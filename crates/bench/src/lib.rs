#![deny(missing_docs)]
#![deny(clippy::unwrap_used)]

//! Shared scaffolding for the benchmark harness that regenerates every
//! table and figure of the paper's evaluation (see `DESIGN.md` §3 and
//! `EXPERIMENTS.md` for the paper-vs-measured record).
//!
//! The Criterion benches under `benches/` and the `table1`/`table2`
//! binaries in the umbrella crate all build on these helpers so that
//! every experiment runs the exact same workload.

pub mod report;

pub use report::{
    bench_json, entries_from_explore_json, entries_from_profile_json, entries_from_stats_json,
    BenchEntry, BENCH_SCHEMA,
};

use archex::{compile, workloads, Explorer, Kernel, Strategy, Trace};
use bitv::BitVector;
use gensim::{StopReason, Xsim, XsimOptions};
use hgen::{synthesize, HgenOptions, HgenResult};
use isdl::Machine;
use vlog::sim::NetlistSim;
use vlog::{AnySim, SimBackend};
use xasm::{Assembler, Program};

/// The workload used by Table 1 and the simulator ablations: an FIR
/// filter on SPAM, looped forever (so any cycle budget can be
/// measured).
#[must_use]
pub fn spam_machine() -> Machine {
    isdl::load(isdl::samples::SPAM).expect("SPAM fixture loads")
}

/// The SPAM2 machine of Table 2's second row.
#[must_use]
pub fn spam2_machine() -> Machine {
    isdl::load(isdl::samples::SPAM2).expect("SPAM2 fixture loads")
}

/// Compiles the benchmark FIR kernel for `machine` and assembles it.
///
/// # Panics
///
/// Panics if the kernel does not compile — the fixtures always do.
#[must_use]
pub fn fir_program(machine: &Machine) -> Program {
    let kernel: Kernel = workloads::fir(4, 12);
    let compiled = compile(machine, &kernel).expect("kernel compiles for fixture");
    Assembler::new(machine).assemble(&compiled.asm).expect("generated assembly is valid")
}

/// A ready-to-run XSIM instance with the FIR program loaded.
///
/// # Panics
///
/// Panics if simulator generation fails (fixtures always succeed).
#[must_use]
pub fn xsim_with_fir(machine: &Machine, options: XsimOptions) -> Xsim<'_> {
    let program = fir_program(machine);
    let mut sim = Xsim::generate_with(machine, options).expect("generates");
    sim.load_program(&program);
    sim
}

/// Runs `sim` for exactly `cycles` cycles, restarting the program
/// whenever it halts (the kernel is finite; speed measurement needs an
/// endless supply of work).
pub fn run_cycles(sim: &mut Xsim<'_>, program: &Program, cycles: u64) -> u64 {
    let start = sim.stats().cycles;
    while sim.stats().cycles - start < cycles {
        match sim.run(cycles - (sim.stats().cycles - start)) {
            StopReason::Halted => {
                // Re-enter the program without resetting counters or
                // re-running the off-line decode pass.
                sim.restart_at(program.entry);
            }
            StopReason::CycleLimit => break,
            other => panic!("unexpected stop while benchmarking: {other}"),
        }
    }
    sim.stats().cycles - start
}

/// An elaborated netlist simulator of the chosen backend with the FIR
/// program loaded — the netlist rows of Table 1.
///
/// # Panics
///
/// Panics if synthesis or elaboration fails.
#[must_use]
pub fn netlist_with_fir(machine: &Machine, backend: SimBackend) -> (HgenResult, AnySim) {
    let program = fir_program(machine);
    let hw = synthesize(machine, HgenOptions::default()).expect("synthesizes");
    let mut sim = hw.simulator(backend).expect("elaborates");
    let imem = machine.storage(machine.imem.expect("imem")).name.clone();
    for (a, w) in program.words.iter().enumerate() {
        sim.poke_memory(&imem, a as u64, w.clone()).expect("pokes");
    }
    if let Some(dm) =
        machine.storages.iter().find(|s| s.kind == isdl::model::StorageKind::DataMemory)
    {
        for &(addr, v) in &program.data {
            sim.poke_memory(&dm.name, addr, BitVector::from_i64(v, dm.width)).expect("pokes");
        }
    }
    (hw, sim)
}

/// An elaborated event-driven netlist simulator with the FIR program
/// loaded — the "synthesizable Verilog" row of Table 1.
///
/// # Panics
///
/// Panics if synthesis or elaboration fails.
#[must_use]
pub fn hardware_with_fir(machine: &Machine) -> (HgenResult, NetlistSim) {
    let (hw, sim) = netlist_with_fir(machine, SimBackend::Event);
    let AnySim::Event(sim) = sim else { unreachable!("event backend requested") };
    (hw, *sim)
}

/// The DSP workload every exploration benchmark and ablation runs:
/// dot product plus vector update, sized to finish quickly.
#[must_use]
pub fn explore_kernels() -> Vec<Kernel> {
    vec![workloads::dot_product(4), workloads::vector_update(3)]
}

/// Runs the Figure 1 exploration loop on `machine` with the shared
/// benchmark workload, using `threads` frontier workers (`0` = one per
/// core). The trace is identical at every thread count — the engine
/// reduces results serially in proposal order — so thread count is
/// purely a wall-clock knob here.
///
/// # Panics
///
/// Panics if the starting machine does not evaluate (fixtures always
/// do).
#[must_use]
pub fn run_exploration(machine: &Machine, strategy: Strategy, threads: usize) -> Trace {
    let explorer = Explorer { max_steps: 6, strategy, threads, ..Explorer::default() };
    explorer.run(machine, &explore_kernels()).expect("fixture machines evaluate")
}

/// Measures simulation speed in cycles per second.
#[must_use]
pub fn cycles_per_second(cycles: u64, elapsed: std::time::Duration) -> f64 {
    cycles as f64 / elapsed.as_secs_f64().max(1e-12)
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Model name.
    pub model: &'static str,
    /// Measured speed, cycles per second.
    pub speed: f64,
    /// Speedup relative to the slowest row.
    pub speedup: f64,
}

/// Measures Table 1: XSIM vs the synthesizable-Verilog model (both
/// netlist backends), all executing the FIR program on SPAM. Speedups
/// are relative to the slowest row, the event-driven netlist — the
/// Verilog-XL stand-in the paper measured.
#[must_use]
pub fn measure_table1(xsim_cycles: u64, hw_cycles: u64) -> Vec<Table1Row> {
    let machine = spam_machine();
    let program = fir_program(&machine);

    let mut sim = xsim_with_fir(&machine, XsimOptions::default());
    let t0 = std::time::Instant::now();
    let done = run_cycles(&mut sim, &program, xsim_cycles);
    let ils_speed = cycles_per_second(done, t0.elapsed());

    let (_, mut hw) = netlist_with_fir(&machine, SimBackend::Event);
    let t0 = std::time::Instant::now();
    hw.clock(hw_cycles).expect("clocks");
    let hw_speed = cycles_per_second(hw_cycles, t0.elapsed());

    let (_, mut lev) = netlist_with_fir(&machine, SimBackend::Levelized);
    let t0 = std::time::Instant::now();
    lev.clock(hw_cycles).expect("clocks");
    let lev_speed = cycles_per_second(hw_cycles, t0.elapsed());

    vec![
        Table1Row {
            model: "XSIM (ILS) Simulator",
            speed: ils_speed,
            speedup: ils_speed / hw_speed,
        },
        Table1Row { model: "Levelized Netlist", speed: lev_speed, speedup: lev_speed / hw_speed },
        Table1Row { model: "Synthesizable Verilog", speed: hw_speed, speedup: 1.0 },
    ]
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Processor name.
    pub processor: String,
    /// Achievable cycle length, ns.
    pub cycle_ns: f64,
    /// Lines of generated Verilog.
    pub lines_of_verilog: usize,
    /// Die size estimate, grid cells.
    pub die_size_cells: f64,
    /// Synthesis wall-clock time, seconds.
    pub synthesis_time_s: f64,
}

/// Measures Table 2: HGEN synthesis statistics for SPAM and SPAM2.
#[must_use]
pub fn measure_table2() -> Vec<Table2Row> {
    [spam_machine(), spam2_machine()]
        .iter()
        .map(|m| {
            let r = synthesize(m, HgenOptions::default()).expect("synthesizes");
            Table2Row {
                processor: m.name.to_uppercase(),
                cycle_ns: r.report.cycle_ns,
                lines_of_verilog: r.lines_of_verilog,
                die_size_cells: r.report.area_cells,
                synthesis_time_s: r.synthesis_time_s,
            }
        })
        .collect()
}

/// Renders Table 1 in the paper's layout.
#[must_use]
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut s =
        String::from("Table 1: Simulation Speeds for XSIM vs Hardware Model (SPAM, FIR kernel)\n");
    s.push_str(&format!("{:<24} {:>20} {:>9}\n", "Model", "Speed (cycles/sec)", "Speedup"));
    for r in rows {
        s.push_str(&format!("{:<24} {:>20.0} {:>9.1}\n", r.model, r.speed, r.speedup));
    }
    s
}

/// Renders Table 2 in the paper's layout.
#[must_use]
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut s = String::from("Table 2: Hardware Synthesis Statistics\n");
    s.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>22} {:>19}\n",
        "Processor", "Cycle(ns)", "Lines of", "Die Size(grid cells)", "Synthesis time(s)"
    ));
    s.push_str(&format!("{:<10} {:>10} {:>10} {:>22} {:>19}\n", "", "", "Verilog", "", ""));
    for r in rows {
        s.push_str(&format!(
            "{:<10} {:>10.1} {:>10} {:>22.0} {:>19.3}\n",
            r.processor, r.cycle_ns, r.lines_of_verilog, r.die_size_cells, r.synthesis_time_s
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        // Tiny budgets keep the test fast; the *shape* — the ILS is
        // substantially faster than the netlist model — must hold even
        // at small scale.
        let rows = measure_table1(20_000, 400);
        assert_eq!(rows.len(), 3);
        assert!(
            rows[0].speedup > 5.0,
            "ILS should be much faster than event-driven netlist simulation, got {:.1}x",
            rows[0].speedup
        );
        assert!(
            rows[1].speedup > 1.0,
            "the levelized backend should beat the event-driven one, got {:.1}x",
            rows[1].speedup
        );
        let rendered = format_table1(&rows);
        assert!(rendered.contains("XSIM"));
        assert!(rendered.contains("Levelized"));
    }

    #[test]
    fn table2_shape_holds() {
        let rows = measure_table2();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].processor, "SPAM");
        assert!(rows[0].die_size_cells > rows[1].die_size_cells, "SPAM bigger than SPAM2");
        assert!(rows[0].lines_of_verilog > rows[1].lines_of_verilog);
        let rendered = format_table2(&rows);
        assert!(rendered.contains("SPAM2"));
    }

    #[test]
    fn exploration_helper_improves_toy() {
        let start = isdl::load(isdl::samples::TOY).expect("loads");
        let trace = run_exploration(&start, Strategy::Greedy, 1);
        assert!(trace.steps.len() > 1, "found at least one improvement");
        assert!(trace.evaluated > 0);
        let parallel = run_exploration(&start, Strategy::Greedy, 4);
        assert!(trace.semantic_eq(&parallel), "thread count cannot change the result");
    }

    #[test]
    fn run_cycles_restarts_program() {
        let m = spam_machine();
        let program = fir_program(&m);
        let mut sim = xsim_with_fir(&m, XsimOptions::default());
        let done = run_cycles(&mut sim, &program, 5_000);
        assert!(done >= 5_000, "kept running across restarts: {done}");
    }
}
