//! Ablation A (§4.1.2): how much die area the clique-based resource
//! sharing saves, and how much more the constraints section unlocks
//! (rule 4's refinement).

use bench::{spam2_machine, spam_machine};
use criterion::{criterion_group, criterion_main, Criterion};
use hgen::{synthesize, HgenOptions, ShareOptions};

fn configs() -> Vec<(&'static str, ShareOptions)> {
    vec![
        ("no sharing", ShareOptions { enabled: false, use_constraints: false, use_hints: false }),
        (
            "rules 1-4 only",
            ShareOptions { enabled: true, use_constraints: false, use_hints: false },
        ),
        (
            "rules + constraints + hints",
            ShareOptions { enabled: true, use_constraints: true, use_hints: true },
        ),
    ]
}

fn bench_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sharing");
    for (name, share) in configs() {
        let spam = spam_machine();
        group.bench_function(format!("synthesize_spam/{name}"), |b| {
            b.iter(|| {
                synthesize(&spam, HgenOptions { share, ..HgenOptions::default() })
                    .expect("synthesizes")
            });
        });
    }
    group.finish();

    eprintln!("\nAblation A: resource sharing (die size, grid cells)");
    eprintln!(
        "{:<30} {:>12} {:>12} {:>8} {:>8}",
        "configuration", "SPAM", "SPAM2", "units", "saved"
    );
    for (name, share) in configs() {
        let spam = synthesize(&spam_machine(), HgenOptions { share, ..HgenOptions::default() })
            .expect("synthesizes");
        let spam2 = synthesize(&spam2_machine(), HgenOptions { share, ..HgenOptions::default() })
            .expect("synthesizes");
        eprintln!(
            "{:<30} {:>12.0} {:>12.0} {:>8} {:>8}",
            name,
            spam.report.area_cells,
            spam2.report.area_cells,
            spam.stats.units,
            spam.stats.units_saved
        );
    }
}

criterion_group!(benches, bench_sharing);
criterion_main!(benches);
