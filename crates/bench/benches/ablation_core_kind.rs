//! Ablation D (§6.2 future work): the paper expects "additional
//! speedups ... by a move to compiled-code simulators" — compare the
//! tree-walking processing core against the compiled bytecode core.
//!
//! Two workloads: the SPAM FIR (realistic VLIW code, amply padded with
//! nops across the 7 fields) and a *dense* straight-line TOY program
//! where every instruction does real ALU/MAC work in both fields —
//! the case where processing-core cost dominates scheduling overhead.

use bench::{fir_program, run_cycles, spam_machine, xsim_with_fir};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gensim::{CoreKind, Xsim, XsimOptions};
use xasm::Assembler;

fn dense_toy_program(machine: &isdl::Machine) -> xasm::Program {
    let mut src = String::from("start: clracc\n");
    for i in 0..200u32 {
        let (d, a, b) = (i % 8, (i + 1) % 8, (i + 3) % 8);
        let line = match i % 5 {
            0 => format!("add R{d}, R{a}, reg(R{b}) | mv R{b}, R{a}\n"),
            1 => format!("sub R{d}, R{a}, ind(R{b}) | mv R{a}, R{d}\n"),
            2 => format!("xor R{d}, R{a}, reg(R{b}) | mv R{b}, R{d}\n"),
            3 => format!("mac R{a}, R{b}\n"),
            _ => format!("li R{d}, {} | mv R{a}, R{b}\n", i % 256),
        };
        src.push_str(&line);
    }
    src.push_str("end: jmp end\n");
    Assembler::new(machine).assemble(&src).expect("assembles")
}

fn bench_cores(c: &mut Criterion) {
    let spam = spam_machine();
    let spam_prog = fir_program(&spam);
    let toy = isdl::load(isdl::samples::TOY).expect("loads");
    let toy_prog = dense_toy_program(&toy);

    let mut group = c.benchmark_group("ablation_core_kind");
    group.throughput(Throughput::Elements(5_000));
    for (name, core) in [("tree", CoreKind::Tree), ("bytecode", CoreKind::Bytecode)] {
        let mut sim = xsim_with_fir(&spam, XsimOptions { core, ..XsimOptions::default() });
        group.bench_function(format!("spam_fir_5k_cycles/{name}"), |b| {
            b.iter(|| run_cycles(&mut sim, &spam_prog, 5_000));
        });

        let mut sim = Xsim::generate_with(&toy, XsimOptions { core, ..XsimOptions::default() })
            .expect("generates");
        sim.load_program(&toy_prog);
        group.bench_function(format!("toy_dense_5k_cycles/{name}"), |b| {
            b.iter(|| run_cycles(&mut sim, &toy_prog, 5_000));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cores);
criterion_main!(benches);
