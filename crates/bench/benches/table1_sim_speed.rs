//! Table 1: simulation speed of the generated ILS vs the generated
//! synthesizable-Verilog model (both executing FIR on SPAM).
//!
//! Criterion measures per-cycle cost of each simulator; the summary
//! printed afterwards is the paper-layout table with cycles/sec.

use bench::{fir_program, hardware_with_fir, run_cycles, spam_machine, xsim_with_fir};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gensim::XsimOptions;

fn bench_table1(c: &mut Criterion) {
    let machine = spam_machine();
    let program = fir_program(&machine);

    let mut group = c.benchmark_group("table1");
    group.throughput(Throughput::Elements(10_000));

    let mut xsim = xsim_with_fir(&machine, XsimOptions::default());
    group.bench_function("xsim_10k_cycles", |b| {
        b.iter(|| run_cycles(&mut xsim, &program, 10_000));
    });

    let (_, mut hw) = hardware_with_fir(&machine);
    group.throughput(Throughput::Elements(500));
    group.bench_function("verilog_500_cycles", |b| {
        b.iter(|| hw.clock(500).expect("clocks"));
    });
    group.finish();

    let rows = bench::measure_table1(2_000_000, 40_000);
    eprintln!("\n{}", bench::format_table1(&rows));
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
