//! Ablation E: exploration strategy — the paper's greedy iterative
//! improvement versus a beam search over the same mutation space.
//! Reports final objective and evaluation cost per strategy.

use archex::Strategy;
use bench::run_exploration;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_explore(c: &mut Criterion) {
    let start = isdl::load(isdl::samples::TOY).expect("loads");

    let mut group = c.benchmark_group("ablation_explore");
    group.sample_size(10);
    for (name, strategy, threads) in [
        ("greedy", Strategy::Greedy, 1),
        ("beam3", Strategy::Beam { width: 3 }, 1),
        ("greedy-mt", Strategy::Greedy, 0),
        ("beam3-mt", Strategy::Beam { width: 3 }, 0),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| run_exploration(&start, strategy, threads));
        });
    }
    group.finish();

    eprintln!("\nAblation E: exploration strategy (TOY, dot+vecupd)");
    eprintln!(
        "{:<10} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "strategy", "final score", "runtime us", "evals", "cached", "skipped"
    );
    for (name, strategy) in [("greedy", Strategy::Greedy), ("beam3", Strategy::Beam { width: 3 })] {
        let t = run_exploration(&start, strategy, 0);
        let last = t.steps.last().expect("steps");
        eprintln!(
            "{:<10} {:>12.4} {:>12.2} {:>8} {:>8} {:>8}",
            name, last.score, last.metrics.runtime_us, t.evaluated, t.cache_hits, t.skipped_errors
        );
        if let Some(e) = &t.first_error {
            eprintln!("           first skip: {e}");
        }
    }
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
