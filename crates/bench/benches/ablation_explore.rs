//! Ablation E: exploration strategy — the paper's greedy iterative
//! improvement versus a beam search over the same mutation space.
//! Reports final objective and evaluation cost per strategy.

use archex::explore::{Explorer, Strategy};
use archex::workloads;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_explore(c: &mut Criterion) {
    let start = isdl::load(isdl::samples::TOY).expect("loads");
    let kernels = vec![workloads::dot_product(4), workloads::vector_update(3)];

    let mut group = c.benchmark_group("ablation_explore");
    group.sample_size(10);
    for (name, strategy) in [
        ("greedy", Strategy::Greedy),
        ("beam3", Strategy::Beam { width: 3 }),
    ] {
        let explorer = Explorer { max_steps: 6, strategy, ..Explorer::default() };
        group.bench_function(name, |b| {
            b.iter(|| explorer.run(&start, &kernels).expect("explores"));
        });
    }
    group.finish();

    eprintln!("\nAblation E: exploration strategy (TOY, dot+vecupd)");
    eprintln!("{:<10} {:>12} {:>12} {:>10}", "strategy", "final score", "runtime us", "evals");
    for (name, strategy) in [
        ("greedy", Strategy::Greedy),
        ("beam3", Strategy::Beam { width: 3 }),
    ] {
        let explorer = Explorer { max_steps: 6, strategy, ..Explorer::default() };
        let t = explorer.run(&start, &kernels).expect("explores");
        let last = t.steps.last().expect("steps");
        eprintln!(
            "{:<10} {:>12.4} {:>12.2} {:>10}",
            name, last.score, last.metrics.runtime_us, t.candidates_evaluated
        );
    }
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
