//! Ablation E: exploration strategy — the paper's greedy iterative
//! improvement versus a beam search over the same mutation space.
//! Reports final objective and evaluation cost per strategy, plus the
//! observability overhead check: the instrumented and uninstrumented
//! engines must run at the same speed (docs/OBSERVABILITY.md's
//! "no measurable slowdown when disabled" guarantee — and the
//! enabled-path cost itself is one clock pair per multi-millisecond
//! evaluation, so both rows should coincide).

use archex::{Explorer, Strategy};
use bench::{explore_kernels, fir_program, run_exploration, spam_machine};
use criterion::{criterion_group, criterion_main, Criterion};
use gensim::{StopReason, Xsim};

fn bench_explore(c: &mut Criterion) {
    let start = isdl::load(isdl::samples::TOY).expect("loads");

    let mut group = c.benchmark_group("ablation_explore");
    group.sample_size(10);
    for (name, strategy, threads) in [
        ("greedy", Strategy::Greedy, 1),
        ("beam3", Strategy::Beam { width: 3 }, 1),
        ("greedy-mt", Strategy::Greedy, 0),
        ("beam3-mt", Strategy::Beam { width: 3 }, 0),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| run_exploration(&start, strategy, threads));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_obs_overhead");
    group.sample_size(10);
    let kernels = explore_kernels();
    for (name, instrument) in [("instrumented", true), ("uninstrumented", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                Explorer { max_steps: 6, threads: 1, instrument, ..Explorer::default() }
                    .run(&start, &kernels)
                    .expect("fixture machines evaluate")
            });
        });
    }
    // Structured log + flight recorder (docs/OBSERVABILITY.md). Both
    // rows above already pay the *default* telemetry tax: the flight
    // recorder has no off switch (its bounded ring is noted on every
    // stage entry, retry, and journal write), and every
    // `obs::log::event_with` call site is live with the gate closed —
    // one relaxed load each, so `uninstrumented` doubles as the
    // disabled-log / flight-recorder-default baseline and must match
    // today's speed. The `log-filtered` row then opens the gate for
    // real: a JSONL subscriber at `info` (the `--log` default), under
    // which every Debug-level hot-path event still short-circuits at
    // the filter check. It must coincide with `instrumented`.
    group.bench_function("log-filtered", |b| {
        obs::log::init(
            obs::LogFilter::parse("info").expect("filter parses"),
            Box::new(std::io::sink()),
        );
        b.iter(|| {
            Explorer { max_steps: 6, threads: 1, ..Explorer::default() }
                .run(&start, &kernels)
                .expect("fixture machines evaluate")
        });
        obs::log::shutdown();
    });
    // The PR-2 contract extended to the cycle profiler: with profiling
    // compiled in but *off*, the per-instruction cost is one gated
    // branch and zero clock reads, so the plain row must match today's
    // speed; the profiled row shows the enabled-path cost (three
    // integer adds per retired instruction).
    let machine = spam_machine();
    let program = fir_program(&machine);
    for (name, profile) in [("xsim-fir-plain", false), ("xsim-fir-profiled", true)] {
        group.bench_function(name, |b| {
            let mut sim = Xsim::generate(&machine).expect("generates");
            sim.load_program(&program);
            if profile {
                sim.enable_profile();
            }
            b.iter(|| {
                sim.restart_at(program.entry);
                assert_eq!(sim.run(100_000), StopReason::Halted);
                sim.stats().cycles
            });
        });
    }
    group.finish();

    eprintln!("\nAblation E: exploration strategy (TOY, dot+vecupd)");
    eprintln!(
        "{:<10} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "strategy", "final score", "runtime us", "evals", "cached", "skipped"
    );
    for (name, strategy) in [("greedy", Strategy::Greedy), ("beam3", Strategy::Beam { width: 3 })] {
        let t = run_exploration(&start, strategy, 0);
        let last = t.steps.last().expect("steps");
        eprintln!(
            "{:<10} {:>12.4} {:>12.2} {:>8} {:>8} {:>8}",
            name, last.score, last.metrics.runtime_us, t.evaluated, t.cache_hits, t.skipped_errors
        );
        if let Some(e) = &t.first_error {
            eprintln!("           first skip: {e}");
        }
    }
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
