//! Micro-benchmarks of the substrates: bit-true arithmetic, ISDL
//! parsing, assembly, and signature-based disassembly.

use bitv::BitVector;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xasm::{Assembler, Disassembler};

fn bench_bitv(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/bitv");
    let a32 = BitVector::from_u64(0xDEAD_BEEF, 32);
    let b32 = BitVector::from_u64(0x1234_5678, 32);
    group.bench_function("add_32", |b| b.iter(|| a32.wrapping_add(&b32)));
    group.bench_function("mul_32", |b| b.iter(|| a32.wrapping_mul(&b32)));
    let a128 = BitVector::from_words(&[u64::MAX, 0x1234], 128);
    let b128 = BitVector::from_words(&[42, 7], 128);
    group.bench_function("add_128", |b| b.iter(|| a128.wrapping_add(&b128)));
    group.bench_function("udiv_128", |b| b.iter(|| a128.unsigned_div(&b128)));
    group.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/frontend");
    let src = isdl::samples::SPAM;
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("load_spam", |b| b.iter(|| isdl::load(src).expect("loads")));
    group.finish();
}

fn bench_asm(c: &mut Criterion) {
    let machine = bench::spam_machine();
    let program = bench::fir_program(&machine);
    let asm = Assembler::new(&machine);
    let kernel = archex::workloads::fir(4, 12);
    let compiled = archex::compile(&machine, &kernel).expect("compiles");

    let mut group = c.benchmark_group("micro/asm");
    group.throughput(Throughput::Elements(compiled.instructions as u64));
    group.bench_function("assemble_fir", |b| {
        b.iter(|| asm.assemble(&compiled.asm).expect("assembles"));
    });

    let d = Disassembler::new(&machine);
    group.throughput(Throughput::Elements(program.words.len() as u64));
    group.bench_function("disassemble_fir", |b| {
        b.iter(|| {
            for (a, w) in program.words.iter().enumerate() {
                let _ = d.decode(std::slice::from_ref(w), a as u64);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_bitv, bench_frontend, bench_asm);
criterion_main!(benches);
