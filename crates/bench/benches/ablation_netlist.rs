//! Ablation F: the compiled levelized netlist backend ([`vlog::lsim`])
//! against the event-driven reference ([`vlog::sim`]). Both elaborate
//! the same HGEN netlist of the SPAM machine with the FIR kernel
//! loaded, and each row clocks the simulator for a fixed number of
//! edges — the throughput gap is exactly what levelization (topological
//! sweeps, 2-state u64 lanes, partition quiescence skipping) buys over
//! 4-state event-driven evaluation. The `Levelized / Event` speedup is
//! printed after the run; the acceptance target is ≥5×.

use bench::{cycles_per_second, netlist_with_fir, spam_machine};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;
use vlog::SimBackend;

const EDGES: u64 = 20_000;

fn bench_netlist_backends(c: &mut Criterion) {
    let machines = [("spam", spam_machine())];
    let mut group = c.benchmark_group("ablation_netlist");
    group.throughput(Throughput::Elements(EDGES));
    for (name, machine) in &machines {
        for backend in [SimBackend::Event, SimBackend::Levelized] {
            let (_hw, mut sim) = netlist_with_fir(machine, backend);
            group.bench_function(format!("{name}_fir_20k_edges/{}", backend.name()), |b| {
                b.iter(|| sim.clock(EDGES).expect("clocks"));
            });
        }
    }
    group.finish();

    // A direct single-shot measurement so the speedup is visible in the
    // run log without post-processing criterion's estimates.
    eprintln!("\nnetlist backend throughput (single-shot, {EDGES} edges):");
    eprintln!(
        "{:<10} {:>16} {:>16} {:>9}",
        "machine", "event edges/s", "levelized edges/s", "speedup"
    );
    for (name, machine) in &machines {
        let rate = |backend: SimBackend| {
            let (_hw, mut sim) = netlist_with_fir(machine, backend);
            sim.clock(EDGES).expect("clocks"); // warm up past reset
            let start = Instant::now();
            sim.clock(EDGES).expect("clocks");
            cycles_per_second(EDGES, start.elapsed())
        };
        let event = rate(SimBackend::Event);
        let lev = rate(SimBackend::Levelized);
        eprintln!("{name:<10} {event:>16.0} {lev:>16.0} {:>8.1}x", lev / event);
    }
}

criterion_group!(benches, bench_netlist_backends);
criterion_main!(benches);
