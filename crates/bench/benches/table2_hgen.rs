//! Table 2: HGEN synthesis statistics for SPAM and SPAM2 — cycle
//! length, lines of Verilog, die size, synthesis time.

use bench::{format_table2, measure_table2, spam2_machine, spam_machine};
use criterion::{criterion_group, criterion_main, Criterion};
use hgen::{synthesize, HgenOptions};

fn bench_table2(c: &mut Criterion) {
    let spam = spam_machine();
    let spam2 = spam2_machine();
    let mut group = c.benchmark_group("table2");
    group.bench_function("synthesize_spam", |b| {
        b.iter(|| synthesize(&spam, HgenOptions::default()).expect("synthesizes"));
    });
    group.bench_function("synthesize_spam2", |b| {
        b.iter(|| synthesize(&spam2, HgenOptions::default()).expect("synthesizes"));
    });
    group.finish();

    eprintln!("\n{}", format_table2(&measure_table2()));
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
