//! Ablation C (§3.3.2): XSIM "performs disassembly off-line to improve
//! speed" — measure simulation speed with the off-line pass versus
//! re-decoding at every fetch.

use bench::{fir_program, run_cycles, spam_machine, xsim_with_fir};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gensim::{CoreKind, XsimOptions};

fn bench_offline(c: &mut Criterion) {
    let machine = spam_machine();
    let program = fir_program(&machine);
    let mut group = c.benchmark_group("ablation_offline_decode");
    group.throughput(Throughput::Elements(5_000));
    for (name, offline) in [("offline", true), ("per_fetch", false)] {
        let mut sim = xsim_with_fir(
            &machine,
            XsimOptions {
                core: CoreKind::Bytecode,
                offline_decode: offline,
                ..XsimOptions::default()
            },
        );
        group.bench_function(format!("xsim_5k_cycles/{name}"), |b| {
            b.iter(|| run_cycles(&mut sim, &program, 5_000));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
