//! Ablation B (§4.2): the paper's signature-derived two-level decode
//! versus a naive masked-comparator-per-operation decoder.

use bench::spam_machine;
use criterion::{criterion_group, criterion_main, Criterion};
use hgen::{synthesize, DecodeStyle, HgenOptions};

fn bench_decode(c: &mut Criterion) {
    let spam = spam_machine();
    let mut group = c.benchmark_group("ablation_decode");
    for (name, style) in
        [("two_level", DecodeStyle::TwoLevel), ("naive_comparator", DecodeStyle::NaiveComparator)]
    {
        group.bench_function(format!("synthesize_spam/{name}"), |b| {
            b.iter(|| {
                synthesize(&spam, HgenOptions { decode: style, ..HgenOptions::default() })
                    .expect("synthesizes")
            });
        });
    }
    group.finish();

    eprintln!("\nAblation B: decode logic style (SPAM)");
    eprintln!("{:<20} {:>12} {:>12}", "style", "cells", "cycle ns");
    for (name, style) in
        [("two-level", DecodeStyle::TwoLevel), ("naive comparator", DecodeStyle::NaiveComparator)]
    {
        let r = synthesize(&spam, HgenOptions { decode: style, ..HgenOptions::default() })
            .expect("synthesizes");
        eprintln!("{:<20} {:>12.0} {:>12.1}", name, r.report.area_cells, r.report.cycle_ns);
    }
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
