//! Ablation E: the RTL middle-end ([`isdl::opt`]). Simulation speed at
//! each `OptLevel` on two workloads — the SPAM FIR (compiler-shaped
//! VLIW code that is already mostly clean) and a dense WIDEMUL program
//! whose wide multiplies only reach the fast u64 bytecode lane after
//! width narrowing, and whose wide divides/remainders additionally
//! need level 3's strength reduction. The gap between `opt0` and
//! `opt2` on WIDEMUL is the narrowing win; the gap between `opt2` and
//! `opt3` is the pass-manager win (strength reduction + load
//! forwarding retiring the remaining wide fallbacks); SPAM bounds the
//! cost on code with little to optimize.
//!
//! Each row runs twice: the default translated basic-block dispatch
//! and an `-interp` baseline with translation disabled, so the
//! translation tier's throughput win is measured per opt level on the
//! same workloads.

use bench::{fir_program, run_cycles, spam_machine, xsim_with_fir};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gensim::{Xsim, XsimOptions};
use isdl::opt::OptLevel;
use xasm::Assembler;

/// Straight-line WIDEMUL code where every instruction does arithmetic
/// that the middle-end can narrow, fold, share, strength-reduce, or
/// forward; ends in `halt` so `run_cycles` restarts it for an endless
/// supply of work. The `wdiv`/`wrem`/`dsum` instructions stay on the
/// wide fallback lane until opt3.
fn dense_widemul_program(machine: &isdl::Machine) -> xasm::Program {
    let mut src = String::new();
    for i in 0..200u32 {
        let line = match i % 8 {
            0 => format!("lia {}\n", i % 256),
            1 => format!("lib {}\n", (i * 7) % 256),
            2 => "wmul\n".to_owned(),
            3 => "sqs\n".to_owned(),
            4 => "wdiv\n".to_owned(),
            5 => "wrem\n".to_owned(),
            6 => format!("dsum {}\n", i % 16),
            _ => "redund\n".to_owned(),
        };
        src.push_str(&line);
    }
    src.push_str("halt\n");
    Assembler::new(machine).assemble(&src).expect("assembles")
}

fn bench_opt_levels(c: &mut Criterion) {
    let spam = spam_machine();
    let spam_prog = fir_program(&spam);
    let widemul = isdl::load(isdl::samples::WIDEMUL).expect("loads");
    let widemul_prog = dense_widemul_program(&widemul);

    let mut group = c.benchmark_group("ablation_rtl_opt");
    group.throughput(Throughput::Elements(5_000));
    for (name, opt) in [
        ("opt0", OptLevel::None),
        ("opt1", OptLevel::Basic),
        ("opt2", OptLevel::Aggressive),
        ("opt3", OptLevel::Full),
    ] {
        for (suffix, translate) in [("", true), ("-interp", false)] {
            let options = XsimOptions { opt, translate, ..XsimOptions::default() };

            let mut sim = xsim_with_fir(&spam, options);
            group.bench_function(format!("spam_fir_5k_cycles/{name}{suffix}"), |b| {
                b.iter(|| run_cycles(&mut sim, &spam_prog, 5_000));
            });

            let mut sim = Xsim::generate_with(&widemul, options).expect("generates");
            sim.load_program(&widemul_prog);
            group.bench_function(format!("widemul_dense_5k_cycles/{name}{suffix}"), |b| {
                b.iter(|| run_cycles(&mut sim, &widemul_prog, 5_000));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_opt_levels);
criterion_main!(benches);
