//! Property-based test: evaluating a random expression tree through
//! the elaborated netlist must match direct `BitVector` computation —
//! the netlist simulator and the bit-true reference semantics may
//! never drift apart.

use bitv::BitVector;
use proptest::prelude::*;
use vlog::ast::{LValue, VBinOp, VExpr, VModule, VUnOp};
use vlog::sim::NetlistSim;

/// A recipe for one expression node over two 8-bit inputs.
#[derive(Debug, Clone)]
enum Node {
    A,
    B,
    Const(u8),
    Bin(VBinOp, Box<Node>, Box<Node>),
    Un(VUnOp, Box<Node>),
    Cond(Box<Node>, Box<Node>, Box<Node>),
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![Just(Node::A), Just(Node::B), any::<u8>().prop_map(Node::Const),];
    leaf.prop_recursive(3, 24, 3, |inner| {
        let bin_ops = prop_oneof![
            Just(VBinOp::Add),
            Just(VBinOp::Sub),
            Just(VBinOp::Mul),
            Just(VBinOp::Div),
            Just(VBinOp::Mod),
            Just(VBinOp::SDiv),
            Just(VBinOp::SRem),
            Just(VBinOp::And),
            Just(VBinOp::Or),
            Just(VBinOp::Xor),
            Just(VBinOp::Shl),
            Just(VBinOp::Shr),
            Just(VBinOp::AShr),
        ];
        let un_ops = prop_oneof![Just(VUnOp::Not), Just(VUnOp::Neg)];
        prop_oneof![
            (bin_ops, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Node::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (un_ops, inner.clone()).prop_map(|(op, a)| Node::Un(op, Box::new(a))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, f)| Node::Cond(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
        ]
    })
}

fn to_vexpr(n: &Node) -> VExpr {
    match n {
        Node::A => VExpr::net("a"),
        Node::B => VExpr::net("b"),
        Node::Const(c) => VExpr::const_u64(u64::from(*c), 8),
        Node::Bin(op, x, y) => VExpr::binary(*op, to_vexpr(x), to_vexpr(y)),
        Node::Un(op, x) => VExpr::unary(*op, to_vexpr(x)),
        Node::Cond(c, t, f) => {
            VExpr::cond(VExpr::unary(VUnOp::RedOr, to_vexpr(c)), to_vexpr(t), to_vexpr(f))
        }
    }
}

/// Direct reference evaluation with `BitVector` semantics.
fn reference(n: &Node, a: &BitVector, b: &BitVector) -> BitVector {
    match n {
        Node::A => a.clone(),
        Node::B => b.clone(),
        Node::Const(c) => BitVector::from_u64(u64::from(*c), 8),
        Node::Bin(op, x, y) => {
            let l = reference(x, a, b);
            let r = reference(y, a, b);
            let amount =
                || u32::try_from(r.to_u64_lossy().min(u64::from(u32::MAX))).expect("clamped");
            match op {
                VBinOp::Add => l.wrapping_add(&r),
                VBinOp::Sub => l.wrapping_sub(&r),
                VBinOp::Mul => l.wrapping_mul(&r),
                VBinOp::Div => l.unsigned_div(&r),
                VBinOp::Mod => l.unsigned_rem(&r),
                VBinOp::SDiv => l.signed_div(&r),
                VBinOp::SRem => l.signed_rem(&r),
                VBinOp::And => l.and(&r),
                VBinOp::Or => l.or(&r),
                VBinOp::Xor => l.xor(&r),
                VBinOp::Shl => l.shl(amount()),
                VBinOp::Shr => l.lshr(amount()),
                VBinOp::AShr => l.ashr(amount()),
                _ => unreachable!("strategy emits arithmetic ops only"),
            }
        }
        Node::Un(op, x) => {
            let v = reference(x, a, b);
            match op {
                VUnOp::Not => v.not(),
                VUnOp::Neg => v.wrapping_neg(),
                _ => unreachable!("strategy emits ~ and - only"),
            }
        }
        Node::Cond(c, t, f) => {
            if reference(c, a, b).is_zero() {
                reference(f, a, b)
            } else {
                reference(t, a, b)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn netlist_evaluation_matches_bitvector_reference(
        n in node_strategy(),
        a in any::<u8>(),
        b in any::<u8>(),
    ) {
        let mut m = VModule::new("m");
        m.add_input("a", 8);
        m.add_input("b", 8);
        m.add_wire("y", 8);
        m.assign(LValue::net("y"), to_vexpr(&n));
        let mut sim = NetlistSim::elaborate(&m).expect("random trees elaborate");
        let av = BitVector::from_u64(u64::from(a), 8);
        let bv = BitVector::from_u64(u64::from(b), 8);
        sim.poke("a", av.clone()).expect("pokes");
        sim.poke("b", bv.clone()).expect("pokes");
        let expect = reference(&n, &av, &bv);
        prop_assert_eq!(sim.peek("y").expect("net"), &expect, "tree: {:?}", n);

        // The levelized backend compiles the same tree (into either the
        // u64 fast lane or the BitVector lane) and must agree exactly.
        let mut lsim = vlog::lsim::LevelizedSim::elaborate(&m).expect("random trees compile");
        lsim.poke("a", av.clone()).expect("pokes");
        lsim.poke("b", bv.clone()).expect("pokes");
        prop_assert_eq!(lsim.peek("y").expect("net"), expect, "levelized tree: {:?}", n);
    }
}
