#![deny(missing_docs)]

//! Synthesizable-Verilog substrate: AST, emitter, netlist elaboration,
//! event-driven and compiled levelized simulation, and a technology
//! cost model.
//!
//! The paper evaluates HGEN output by simulating the generated Verilog
//! with Cadence Verilog-XL (Table 1) and synthesizing it with Synopsys
//! against the LSI 10K library (Table 2). Both tools are proprietary,
//! so this crate provides the closest open substitutes:
//!
//! * [`ast`] / the emitter — a single-module synthesizable subset
//!   (wires, regs, memories, continuous assigns, one clocked `always`
//!   block) sufficient for HGEN's output, printable as Verilog text
//!   (whose line count is the "Lines of Verilog" column of Table 2);
//! * [`netlist`] — elaboration into a word-level netlist with fan-out
//!   tracking;
//! * [`sim`] — an event-driven two-phase clocked simulator over the
//!   netlist (the Verilog-XL stand-in: it pays per-net event cost each
//!   cycle, which is exactly why the ILS beats it in Table 1);
//! * [`level`] / [`lsim`] — the compiled levelized backend (the GSIM
//!   approach): topological ordering, 2-state bit-parallel word
//!   evaluation over a flat arena, and partition skipping, bit-identical
//!   to [`sim`] but fast enough to cross-check every exploration round;
//! * [`tech`] — an LSI-10K-flavoured library mapping each word-level
//!   operator to gate-equivalent area ("grid cells") and delay (ns),
//!   plus static timing over the netlist (the Synopsys stand-in).
//!
//! The two simulation backends share one surface; pick one through
//! [`AnySim`] (or directly) and the rest of the testbench code is
//! identical. See `docs/SIMULATORS.md` for the decision table.
//!
//! # Examples
//!
//! Build a 2-bit counter, print it, and simulate 3 clocks on each
//! backend:
//!
//! ```
//! use vlog::ast::*;
//! use vlog::{AnySim, SimBackend};
//!
//! let mut m = VModule::new("counter");
//! m.add_reg("count", 2);
//! m.add_output("out", 2);
//! m.assign(LValue::net("out"), VExpr::net("count"));
//! m.always_ff(vec![VStmt::NonBlocking {
//!     lhs: LValue::net("count"),
//!     rhs: VExpr::binary(VBinOp::Add, VExpr::net("count"), VExpr::const_u64(1, 2)),
//! }]);
//!
//! let text = m.to_verilog();
//! assert!(text.contains("module counter"));
//!
//! for backend in [SimBackend::Event, SimBackend::Levelized] {
//!     let mut sim = AnySim::elaborate(&m, backend)?;
//!     sim.clock(3)?;
//!     assert_eq!(sim.peek("count")?.to_u64_lossy(), 3);
//! }
//! # Ok::<(), vlog::VlogError>(())
//! ```

pub mod ast;
pub mod level;
pub mod lsim;
pub mod netlist;
pub mod sim;
pub mod tech;
mod vcd;

use bitv::BitVector;
use std::error::Error;
use std::fmt;
use std::io::Write;

/// Error elaborating or simulating a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VlogError {
    msg: String,
}

impl VlogError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// The detail message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for VlogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verilog error: {}", self.msg)
    }
}

impl Error for VlogError {}

/// Which netlist simulation backend to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimBackend {
    /// The event-driven two-phase simulator ([`sim::NetlistSim`]):
    /// accepts every elaborable design, pays a worklist per cycle.
    #[default]
    Event,
    /// The compiled levelized simulator ([`lsim::LevelizedSim`]):
    /// straight-line 2-state sweeps, rejects combinational loops at
    /// compile time.
    Levelized,
}

impl SimBackend {
    /// Parses a backend name as used by the `--netlist-sim` CLI flags.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "event" => Some(Self::Event),
            "levelized" => Some(Self::Levelized),
            _ => None,
        }
    }

    /// The CLI/report name (`event` or `levelized`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Event => "event",
            Self::Levelized => "levelized",
        }
    }
}

impl fmt::Display for SimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A netlist simulator of either backend behind one surface.
///
/// Both variants are bit-identical on every design the levelized
/// compiler accepts; the differential suite keeps them that way.
#[derive(Debug, Clone)]
pub enum AnySim {
    /// The event-driven backend.
    Event(Box<sim::NetlistSim>),
    /// The compiled levelized backend.
    Levelized(Box<lsim::LevelizedSim>),
}

impl AnySim {
    /// Elaborates `module` with the chosen backend.
    ///
    /// # Errors
    ///
    /// Propagates elaboration/levelization errors.
    pub fn elaborate(module: &ast::VModule, backend: SimBackend) -> Result<Self, VlogError> {
        Ok(match backend {
            SimBackend::Event => Self::Event(Box::new(sim::NetlistSim::elaborate(module)?)),
            SimBackend::Levelized => {
                Self::Levelized(Box::new(lsim::LevelizedSim::elaborate(module)?))
            }
        })
    }

    /// Which backend this is.
    #[must_use]
    pub fn backend(&self) -> SimBackend {
        match self {
            Self::Event(_) => SimBackend::Event,
            Self::Levelized(_) => SimBackend::Levelized,
        }
    }

    /// The elaborated netlist.
    #[must_use]
    pub fn netlist(&self) -> &netlist::Netlist {
        match self {
            Self::Event(s) => s.netlist(),
            Self::Levelized(s) => s.netlist(),
        }
    }

    /// Current value of a net (owned — the levelized arena does not
    /// store narrow nets as `BitVector`s).
    ///
    /// # Errors
    ///
    /// Returns a [`VlogError`] if the net does not exist.
    pub fn peek(&self, name: &str) -> Result<BitVector, VlogError> {
        match self {
            Self::Event(s) => s.peek(name).cloned(),
            Self::Levelized(s) => s.peek(name),
        }
    }

    /// Current value of one memory cell; the address wraps at the
    /// depth.
    ///
    /// # Errors
    ///
    /// Returns a [`VlogError`] if the memory does not exist.
    pub fn peek_memory(&self, name: &str, addr: u64) -> Result<BitVector, VlogError> {
        match self {
            Self::Event(s) => s.peek_memory(name, addr).cloned(),
            Self::Levelized(s) => s.peek_memory(name, addr),
        }
    }

    /// Forces a net value and propagates.
    ///
    /// # Errors
    ///
    /// See [`sim::NetlistSim::poke`] and [`lsim::LevelizedSim::poke`].
    pub fn poke(&mut self, name: &str, value: BitVector) -> Result<(), VlogError> {
        match self {
            Self::Event(s) => s.poke(name, value),
            Self::Levelized(s) => s.poke(name, value),
        }
    }

    /// Writes one memory cell directly and propagates.
    ///
    /// # Errors
    ///
    /// See [`sim::NetlistSim::poke_memory`] and
    /// [`lsim::LevelizedSim::poke_memory`].
    pub fn poke_memory(
        &mut self,
        name: &str,
        addr: u64,
        value: BitVector,
    ) -> Result<(), VlogError> {
        match self {
            Self::Event(s) => s.poke_memory(name, addr, value),
            Self::Levelized(s) => s.poke_memory(name, addr, value),
        }
    }

    /// Applies `n` rising clock edges.
    ///
    /// # Errors
    ///
    /// Fails on a non-converging combinational loop (event backend
    /// only; the levelized backend rejected loops at compile time).
    pub fn clock(&mut self, n: u64) -> Result<(), VlogError> {
        match self {
            Self::Event(s) => s.clock(n),
            Self::Levelized(s) => s.clock(n),
        }
    }

    /// Total rising edges applied.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        match self {
            Self::Event(s) => s.cycles(),
            Self::Levelized(s) => s.cycles(),
        }
    }

    /// Total combinational node evaluations performed (events).
    #[must_use]
    pub fn events(&self) -> u64 {
        match self {
            Self::Event(s) => s.events(),
            Self::Levelized(s) => s.node_evals(),
        }
    }

    /// Starts dumping a VCD waveform; byte-identical between backends
    /// for the same stimulus.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn start_vcd(&mut self, sink: Box<dyn Write + Send + Sync>) -> std::io::Result<()> {
        match self {
            Self::Event(s) => s.start_vcd(sink),
            Self::Levelized(s) => s.start_vcd(sink),
        }
    }

    /// Stops VCD dumping and returns the sink.
    pub fn stop_vcd(&mut self) -> Option<Box<dyn Write + Send + Sync>> {
        match self {
            Self::Event(s) => s.stop_vcd(),
            Self::Levelized(s) => s.stop_vcd(),
        }
    }
}

/// Builds the `vlog-stats/1` report for a simulator: design shape,
/// work performed, and — for the levelized backend — the structure
/// and quiescence counters documented in `docs/OBSERVABILITY.md`.
#[must_use]
pub fn stats_json(sim: &AnySim) -> obs::Json {
    let nl = sim.netlist();
    let cycles = sim.cycles();
    let events = sim.events();
    let per_clock = if cycles == 0 { 0.0 } else { events as f64 / cycles as f64 };
    let mut j = obs::Json::obj()
        .with("schema", "vlog-stats/1")
        .with("backend", sim.backend().name())
        .with("nets", nl.nets.len())
        .with("mems", nl.mems.len())
        .with("comb_nodes", nl.comb.len())
        .with("cycles", cycles)
        .with("events", events)
        .with("evals_per_clock", per_clock);
    if let AnySim::Levelized(s) = sim {
        let st = s.stats();
        j.insert(
            "levelized",
            obs::Json::obj()
                .with("levels", u64::from(st.levels))
                .with("partitions", st.partitions)
                .with("partitions_evaluated", st.partitions_evaluated)
                .with("partitions_skipped", st.partitions_skipped)
                .with("skip_rate", st.skip_rate()),
        );
    }
    j
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::ast::{LValue, VBinOp, VExpr, VModule, VStmt};

    fn counter() -> VModule {
        let mut m = VModule::new("c");
        m.add_reg("count", 4);
        m.always_ff(vec![VStmt::NonBlocking {
            lhs: LValue::net("count"),
            rhs: VExpr::binary(VBinOp::Add, VExpr::net("count"), VExpr::const_u64(1, 4)),
        }]);
        m
    }

    #[test]
    fn stats_json_has_schema_and_levelized_block() {
        let m = counter();
        let mut sim = AnySim::elaborate(&m, SimBackend::Levelized).expect("elaborates");
        sim.clock(5).expect("clocks");
        let j = stats_json(&sim);
        assert_eq!(j.get_str("schema"), Some("vlog-stats/1"));
        assert_eq!(j.get_str("backend"), Some("levelized"));
        assert_eq!(j.get_u64("cycles"), Some(5));
        let lv = j.get("levelized").expect("levelized block");
        assert!(lv.get_u64("partitions").is_some());
        assert!(lv.get_f64("skip_rate").is_some());

        let round_trip = obs::Json::parse(&j.to_pretty()).expect("parses");
        assert_eq!(round_trip.get_str("schema"), Some("vlog-stats/1"));
    }

    #[test]
    fn event_backend_has_no_levelized_block() {
        let m = counter();
        let mut sim = AnySim::elaborate(&m, SimBackend::Event).expect("elaborates");
        sim.clock(2).expect("clocks");
        let j = stats_json(&sim);
        assert_eq!(j.get_str("backend"), Some("event"));
        assert!(j.get("levelized").is_none());
    }

    #[test]
    fn backend_parse_round_trips() {
        for b in [SimBackend::Event, SimBackend::Levelized] {
            assert_eq!(SimBackend::parse(b.name()), Some(b));
        }
        assert_eq!(SimBackend::parse("tree"), None);
    }
}
