#![warn(missing_docs)]

//! Synthesizable-Verilog substrate: AST, emitter, netlist elaboration,
//! event-driven simulation, and a technology cost model.
//!
//! The paper evaluates HGEN output by simulating the generated Verilog
//! with Cadence Verilog-XL (Table 1) and synthesizing it with Synopsys
//! against the LSI 10K library (Table 2). Both tools are proprietary,
//! so this crate provides the closest open substitutes:
//!
//! * [`ast`] / the emitter — a single-module synthesizable subset
//!   (wires, regs, memories, continuous assigns, one clocked `always`
//!   block) sufficient for HGEN's output, printable as Verilog text
//!   (whose line count is the "Lines of Verilog" column of Table 2);
//! * [`netlist`] — elaboration into a word-level netlist with fan-out
//!   tracking;
//! * [`sim`] — an event-driven two-phase clocked simulator over the
//!   netlist (the Verilog-XL stand-in: it pays per-net event cost each
//!   cycle, which is exactly why the ILS beats it in Table 1);
//! * [`tech`] — an LSI-10K-flavoured library mapping each word-level
//!   operator to gate-equivalent area ("grid cells") and delay (ns),
//!   plus static timing over the netlist (the Synopsys stand-in).
//!
//! # Examples
//!
//! Build a 2-bit counter, print it, and simulate 3 clocks:
//!
//! ```
//! use vlog::ast::*;
//! use vlog::sim::NetlistSim;
//!
//! let mut m = VModule::new("counter");
//! m.add_reg("count", 2);
//! m.add_output("out", 2);
//! m.assign(LValue::net("out"), VExpr::net("count"));
//! m.always_ff(vec![VStmt::NonBlocking {
//!     lhs: LValue::net("count"),
//!     rhs: VExpr::binary(VBinOp::Add, VExpr::net("count"), VExpr::const_u64(1, 2)),
//! }]);
//!
//! let text = m.to_verilog();
//! assert!(text.contains("module counter"));
//!
//! let mut sim = NetlistSim::elaborate(&m)?;
//! sim.clock(3);
//! assert_eq!(sim.peek("count").to_u64_lossy(), 3);
//! # Ok::<(), vlog::VlogError>(())
//! ```

pub mod ast;
pub mod netlist;
pub mod sim;
pub mod tech;

use std::error::Error;
use std::fmt;

/// Error elaborating or simulating a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VlogError {
    msg: String,
}

impl VlogError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// The detail message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for VlogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verilog error: {}", self.msg)
    }
}

impl Error for VlogError {}
