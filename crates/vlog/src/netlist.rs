//! Elaboration of a [`VModule`] into a word-level netlist.
//!
//! Nets get ids, continuous assigns become combinational nodes with
//! explicit fan-in/fan-out, and the clocked block becomes the
//! sequential update program. The event-driven simulator in
//! [`crate::sim`] runs over this structure; the technology model in
//! [`crate::tech`] costs it.

use crate::ast::{LValue, VExpr, VModule, VStmt};
use crate::VlogError;
use bitv::BitVector;
use std::collections::HashMap;

/// Identifier of a scalar net (wire, reg, or port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub usize);

/// Identifier of a memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub usize);

/// A net in the elaborated design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Declared name.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Whether it is clocked state.
    pub is_reg: bool,
    /// Whether it is a module input (driven by the testbench).
    pub is_input: bool,
}

/// A memory in the elaborated design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mem {
    /// Declared name.
    pub name: String,
    /// Cell width in bits.
    pub width: u32,
    /// Number of cells.
    pub depth: u64,
}

/// One combinational node (a continuous assignment).
#[derive(Debug, Clone, PartialEq)]
pub struct CombNode {
    /// Destination net.
    pub target: NetId,
    /// Destination bit range.
    pub hi: u32,
    /// Destination low bit.
    pub lo: u32,
    /// The expression.
    pub expr: VExpr,
    /// Nets this node reads.
    pub reads: Vec<NetId>,
    /// Memories this node reads.
    pub reads_mem: Vec<MemId>,
}

/// The elaborated netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    /// All nets.
    pub nets: Vec<Net>,
    /// All memories.
    pub mems: Vec<Mem>,
    /// Combinational nodes in declaration order.
    pub comb: Vec<CombNode>,
    /// The sequential program (the clocked block).
    pub ff: Vec<VStmt>,
    /// `fanout[n]` = comb node indices reading net `n`.
    pub fanout: Vec<Vec<usize>>,
    /// `mem_fanout[m]` = comb node indices reading memory `m`.
    pub mem_fanout: Vec<Vec<usize>>,
    names: HashMap<String, NetId>,
    mem_names: HashMap<String, MemId>,
}

impl Netlist {
    /// Elaborates a module.
    ///
    /// # Errors
    ///
    /// Returns a [`VlogError`] for undeclared nets, width
    /// inconsistencies, or conflicting drivers.
    pub fn elaborate(module: &VModule) -> Result<Self, VlogError> {
        let mut nets = Vec::new();
        let mut mems = Vec::new();
        let mut names = HashMap::new();
        let mut mem_names = HashMap::new();

        for p in &module.ports {
            names.insert(p.name.clone(), NetId(nets.len()));
            nets.push(Net {
                name: p.name.clone(),
                width: p.width,
                is_reg: false,
                is_input: p.dir == crate::ast::PortDir::Input,
            });
        }
        for n in &module.nets {
            if names.contains_key(&n.name) || mem_names.contains_key(&n.name) {
                return Err(VlogError::new(format!("net `{}` declared twice", n.name)));
            }
            match n.depth {
                Some(depth) => {
                    mem_names.insert(n.name.clone(), MemId(mems.len()));
                    mems.push(Mem { name: n.name.clone(), width: n.width, depth });
                }
                None => {
                    names.insert(n.name.clone(), NetId(nets.len()));
                    nets.push(Net {
                        name: n.name.clone(),
                        width: n.width,
                        is_reg: n.is_reg,
                        is_input: false,
                    });
                }
            }
        }

        let ctx = Ctx { nets: &nets, mems: &mems, names: &names, mem_names: &mem_names };
        let mut comb = Vec::new();
        let mut driven: Vec<Vec<bool>> =
            nets.iter().map(|n| vec![false; n.width as usize]).collect();
        for (lhs, rhs) in &module.assigns {
            let (target, hi, lo) = ctx.resolve_lvalue_net(lhs)?;
            let expr_w = ctx.expr_width(rhs)?;
            if expr_w != hi - lo + 1 {
                return Err(VlogError::new(format!(
                    "assign to `{}`: destination is {} bits, expression is {expr_w}",
                    lhs.name(),
                    hi - lo + 1
                )));
            }
            if nets[target.0].is_input {
                return Err(VlogError::new(format!("cannot drive input `{}`", lhs.name())));
            }
            for b in lo..=hi {
                let slot = &mut driven[target.0][b as usize];
                if *slot {
                    return Err(VlogError::new(format!(
                        "bit {b} of `{}` has two drivers",
                        lhs.name()
                    )));
                }
                *slot = true;
            }
            let mut reads = Vec::new();
            let mut reads_mem = Vec::new();
            ctx.collect_reads(rhs, &mut reads, &mut reads_mem)?;
            reads.sort_unstable();
            reads.dedup();
            reads_mem.sort_unstable();
            reads_mem.dedup();
            comb.push(CombNode { target, hi, lo, expr: rhs.clone(), reads, reads_mem });
        }

        // Validate the sequential block (width checks + name resolution).
        for st in &module.ff {
            ctx.check_stmt(st)?;
        }

        let mut fanout = vec![Vec::new(); nets.len()];
        let mut mem_fanout = vec![Vec::new(); mems.len()];
        for (i, node) in comb.iter().enumerate() {
            for &r in &node.reads {
                fanout[r.0].push(i);
            }
            for &m in &node.reads_mem {
                mem_fanout[m.0].push(i);
            }
        }

        Ok(Self { nets, mems, comb, ff: module.ff.clone(), fanout, mem_fanout, names, mem_names })
    }

    /// Looks up a net by name.
    #[must_use]
    pub fn net_id(&self, name: &str) -> Option<NetId> {
        self.names.get(name).copied()
    }

    /// Looks up a memory by name.
    #[must_use]
    pub fn mem_id(&self, name: &str) -> Option<MemId> {
        self.mem_names.get(name).copied()
    }

    /// Computes an expression's width against this netlist's
    /// declarations (the same rules elaboration enforces). Used by the
    /// levelized compiler in [`crate::lsim`] to size its value slots.
    ///
    /// # Errors
    ///
    /// Returns a [`VlogError`] for undeclared names or inconsistent
    /// operand widths.
    pub fn expr_width(&self, e: &VExpr) -> Result<u32, VlogError> {
        let ctx = Ctx {
            nets: &self.nets,
            mems: &self.mems,
            names: &self.names,
            mem_names: &self.mem_names,
        };
        ctx.expr_width(e)
    }
}

struct Ctx<'a> {
    nets: &'a [Net],
    mems: &'a [Mem],
    names: &'a HashMap<String, NetId>,
    mem_names: &'a HashMap<String, MemId>,
}

impl Ctx<'_> {
    fn net(&self, name: &str) -> Result<NetId, VlogError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| VlogError::new(format!("net `{name}` is not declared")))
    }

    fn resolve_lvalue_net(&self, lv: &LValue) -> Result<(NetId, u32, u32), VlogError> {
        match lv {
            LValue::Net(n) => {
                let id = self.net(n)?;
                let w = self.nets[id.0].width;
                Ok((id, w - 1, 0))
            }
            LValue::Slice(n, hi, lo) => {
                let id = self.net(n)?;
                let w = self.nets[id.0].width;
                if hi < lo || *hi >= w {
                    return Err(VlogError::new(format!("slice {hi}:{lo} out of range for `{n}`")));
                }
                Ok((id, *hi, *lo))
            }
            LValue::Index(n, _) => Err(VlogError::new(format!(
                "memory `{n}` can only be written inside the clocked block"
            ))),
        }
    }

    /// Computes an expression's width, validating operand widths.
    fn expr_width(&self, e: &VExpr) -> Result<u32, VlogError> {
        use crate::ast::{VBinOp, VUnOp};
        match e {
            VExpr::Net(n) => {
                if let Some(id) = self.names.get(n) {
                    Ok(self.nets[id.0].width)
                } else {
                    Err(VlogError::new(format!("net `{n}` is not declared")))
                }
            }
            VExpr::Const(c) => Ok(c.width()),
            VExpr::Index(m, a) => {
                let id = self
                    .mem_names
                    .get(m)
                    .ok_or_else(|| VlogError::new(format!("memory `{m}` is not declared")))?;
                let _ = self.expr_width(a)?;
                Ok(self.mems[id.0].width)
            }
            VExpr::Slice(n, hi, lo) => {
                let id = self.net(n)?;
                let w = self.nets[id.0].width;
                if hi < lo || *hi >= w {
                    return Err(VlogError::new(format!("slice {hi}:{lo} out of range for `{n}`")));
                }
                Ok(hi - lo + 1)
            }
            VExpr::Unary(op, a) => {
                let w = self.expr_width(a)?;
                Ok(match op {
                    VUnOp::RedOr | VUnOp::LNot => 1,
                    VUnOp::Not | VUnOp::Neg => w,
                })
            }
            VExpr::Binary(op, a, b) => {
                let wa = self.expr_width(a)?;
                let wb = self.expr_width(b)?;
                match op {
                    VBinOp::Shl | VBinOp::Shr | VBinOp::AShr => Ok(wa),
                    _ => {
                        if wa != wb {
                            return Err(VlogError::new(format!(
                                "operand widths differ ({wa} vs {wb}) for `{}`",
                                op.symbol()
                            )));
                        }
                        if op.is_comparison() {
                            Ok(1)
                        } else {
                            Ok(wa)
                        }
                    }
                }
            }
            VExpr::Cond(c, t, f) => {
                let _ = self.expr_width(c)?;
                let wt = self.expr_width(t)?;
                let wf = self.expr_width(f)?;
                if wt != wf {
                    return Err(VlogError::new(format!(
                        "conditional arms have different widths ({wt} vs {wf})"
                    )));
                }
                Ok(wt)
            }
            VExpr::Concat(parts) => {
                let mut w = 0;
                for p in parts {
                    w += self.expr_width(p)?;
                }
                Ok(w)
            }
            VExpr::Zext(a, w) => Ok(self.expr_width(a)? + w),
            VExpr::Sext(a, from, to) => {
                let w = self.expr_width(a)?;
                if w != *from || to < from {
                    return Err(VlogError::new("inconsistent sign-extension widths"));
                }
                Ok(*to)
            }
            VExpr::Trunc(a, w) => {
                let aw = self.expr_width(a)?;
                if *w > aw {
                    return Err(VlogError::new("truncation wider than operand"));
                }
                Ok(*w)
            }
        }
    }

    fn collect_reads(
        &self,
        e: &VExpr,
        nets: &mut Vec<NetId>,
        mems: &mut Vec<MemId>,
    ) -> Result<(), VlogError> {
        match e {
            VExpr::Net(n) | VExpr::Slice(n, _, _) => {
                nets.push(self.net(n)?);
                Ok(())
            }
            VExpr::Const(_) => Ok(()),
            VExpr::Index(m, a) => {
                let id = self
                    .mem_names
                    .get(m)
                    .ok_or_else(|| VlogError::new(format!("memory `{m}` is not declared")))?;
                mems.push(*id);
                self.collect_reads(a, nets, mems)
            }
            VExpr::Unary(_, a) | VExpr::Zext(a, _) | VExpr::Sext(a, _, _) | VExpr::Trunc(a, _) => {
                self.collect_reads(a, nets, mems)
            }
            VExpr::Binary(_, a, b) => {
                self.collect_reads(a, nets, mems)?;
                self.collect_reads(b, nets, mems)
            }
            VExpr::Cond(c, t, f) => {
                self.collect_reads(c, nets, mems)?;
                self.collect_reads(t, nets, mems)?;
                self.collect_reads(f, nets, mems)
            }
            VExpr::Concat(parts) => {
                for p in parts {
                    self.collect_reads(p, nets, mems)?;
                }
                Ok(())
            }
        }
    }

    fn check_stmt(&self, st: &VStmt) -> Result<(), VlogError> {
        match st {
            VStmt::NonBlocking { lhs, rhs } => {
                let dest_w = match lhs {
                    LValue::Net(n) => {
                        let id = self.net(n)?;
                        if !self.nets[id.0].is_reg {
                            return Err(VlogError::new(format!(
                                "clocked assignment to non-reg `{n}`"
                            )));
                        }
                        self.nets[id.0].width
                    }
                    LValue::Slice(n, hi, lo) => {
                        let id = self.net(n)?;
                        if !self.nets[id.0].is_reg {
                            return Err(VlogError::new(format!(
                                "clocked assignment to non-reg `{n}`"
                            )));
                        }
                        let w = self.nets[id.0].width;
                        if hi < lo || *hi >= w {
                            return Err(VlogError::new(format!(
                                "slice {hi}:{lo} out of range for `{n}`"
                            )));
                        }
                        hi - lo + 1
                    }
                    LValue::Index(m, a) => {
                        let id = self.mem_names.get(m).ok_or_else(|| {
                            VlogError::new(format!("memory `{m}` is not declared"))
                        })?;
                        let _ = self.expr_width(a)?;
                        self.mems[id.0].width
                    }
                };
                let w = self.expr_width(rhs)?;
                if w != dest_w {
                    return Err(VlogError::new(format!(
                        "clocked assignment to `{}`: {dest_w} bits vs {w}",
                        lhs.name()
                    )));
                }
                Ok(())
            }
            VStmt::If { cond, then_body, else_body } => {
                let _ = self.expr_width(cond)?;
                for s in then_body.iter().chain(else_body) {
                    self.check_stmt(s)?;
                }
                Ok(())
            }
        }
    }
}

/// Evaluates an expression against net values and memories.
///
/// Division by zero follows the bit-true convention used across the
/// suite: quotient all-ones, remainder = dividend.
#[must_use]
pub fn eval_expr(
    e: &VExpr,
    netlist: &Netlist,
    values: &[BitVector],
    mems: &[Vec<BitVector>],
) -> BitVector {
    use crate::ast::{VBinOp, VUnOp};
    match e {
        VExpr::Net(n) => values[netlist.net_id(n).expect("validated net").0].clone(),
        VExpr::Const(c) => c.clone(),
        VExpr::Index(m, a) => {
            let mid = netlist.mem_id(m).expect("validated memory");
            let addr = eval_expr(a, netlist, values, mems).to_u64_lossy();
            let depth = netlist.mems[mid.0].depth;
            mems[mid.0][(addr % depth) as usize].clone()
        }
        VExpr::Slice(n, hi, lo) => {
            values[netlist.net_id(n).expect("validated net").0].slice(*hi, *lo)
        }
        VExpr::Unary(op, a) => {
            let v = eval_expr(a, netlist, values, mems);
            match op {
                VUnOp::Not => v.not(),
                VUnOp::Neg => v.wrapping_neg(),
                VUnOp::RedOr => BitVector::from_bool(!v.is_zero()),
                VUnOp::LNot => BitVector::from_bool(v.is_zero()),
            }
        }
        VExpr::Binary(op, a, b) => {
            let x = eval_expr(a, netlist, values, mems);
            let y = eval_expr(b, netlist, values, mems);
            let amount =
                || u32::try_from(y.to_u64_lossy().min(u64::from(u32::MAX))).expect("clamped");
            match op {
                VBinOp::Add => x.wrapping_add(&y),
                VBinOp::Sub => x.wrapping_sub(&y),
                VBinOp::Mul => x.wrapping_mul(&y),
                VBinOp::Div => x.unsigned_div(&y),
                VBinOp::Mod => x.unsigned_rem(&y),
                VBinOp::SDiv => x.signed_div(&y),
                VBinOp::SRem => x.signed_rem(&y),
                VBinOp::And => x.and(&y),
                VBinOp::Or => x.or(&y),
                VBinOp::Xor => x.xor(&y),
                VBinOp::Shl => x.shl(amount()),
                VBinOp::Shr => x.lshr(amount()),
                VBinOp::AShr => x.ashr(amount()),
                VBinOp::Eq => BitVector::from_bool(x == y),
                VBinOp::Ne => BitVector::from_bool(x != y),
                VBinOp::Lt => BitVector::from_bool(x.cmp_unsigned(&y).is_lt()),
                VBinOp::Le => BitVector::from_bool(x.cmp_unsigned(&y).is_le()),
                VBinOp::SLt => BitVector::from_bool(x.cmp_signed(&y).is_lt()),
                VBinOp::SLe => BitVector::from_bool(x.cmp_signed(&y).is_le()),
            }
        }
        VExpr::Cond(c, t, f) => {
            if eval_expr(c, netlist, values, mems).is_zero() {
                eval_expr(f, netlist, values, mems)
            } else {
                eval_expr(t, netlist, values, mems)
            }
        }
        VExpr::Concat(parts) => {
            let mut it = parts.iter();
            let mut acc = eval_expr(it.next().expect("non-empty concat"), netlist, values, mems);
            for p in it {
                acc = acc.concat(&eval_expr(p, netlist, values, mems));
            }
            acc
        }
        VExpr::Zext(a, w) => {
            let v = eval_expr(a, netlist, values, mems);
            let total = v.width() + w;
            v.zext(total)
        }
        VExpr::Sext(a, _, to) => eval_expr(a, netlist, values, mems).sext(*to),
        VExpr::Trunc(a, w) => eval_expr(a, netlist, values, mems).trunc(*w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn elaborate_counter() {
        let mut m = VModule::new("c");
        m.add_reg("count", 4);
        m.add_output("out", 4);
        m.assign(LValue::net("out"), VExpr::net("count"));
        m.always_ff(vec![VStmt::NonBlocking {
            lhs: LValue::net("count"),
            rhs: VExpr::binary(VBinOp::Add, VExpr::net("count"), VExpr::const_u64(1, 4)),
        }]);
        let nl = Netlist::elaborate(&m).expect("elaborates");
        assert_eq!(nl.nets.len(), 2);
        assert_eq!(nl.comb.len(), 1);
        let count = nl.net_id("count").expect("count");
        assert_eq!(nl.fanout[count.0], vec![0]);
    }

    #[test]
    fn double_driver_rejected() {
        let mut m = VModule::new("m");
        m.add_wire("w", 4);
        m.assign(LValue::net("w"), VExpr::const_u64(1, 4));
        m.assign(LValue::Slice("w".into(), 1, 0), VExpr::const_u64(1, 2));
        assert!(Netlist::elaborate(&m).is_err());
    }

    #[test]
    fn disjoint_slice_drivers_allowed() {
        let mut m = VModule::new("m");
        m.add_wire("w", 4);
        m.assign(LValue::Slice("w".into(), 3, 2), VExpr::const_u64(1, 2));
        m.assign(LValue::Slice("w".into(), 1, 0), VExpr::const_u64(2, 2));
        assert!(Netlist::elaborate(&m).is_ok());
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut m = VModule::new("m");
        m.add_wire("w", 4);
        m.assign(LValue::net("w"), VExpr::const_u64(1, 8));
        assert!(Netlist::elaborate(&m).is_err());
    }

    #[test]
    fn undeclared_net_rejected() {
        let mut m = VModule::new("m");
        m.add_wire("w", 4);
        m.assign(LValue::net("w"), VExpr::net("ghost"));
        assert!(Netlist::elaborate(&m).is_err());
    }

    #[test]
    fn driving_input_rejected() {
        let mut m = VModule::new("m");
        m.add_input("i", 4);
        m.assign(LValue::net("i"), VExpr::const_u64(0, 4));
        assert!(Netlist::elaborate(&m).is_err());
    }

    #[test]
    fn clocked_write_to_wire_rejected() {
        let mut m = VModule::new("m");
        m.add_wire("w", 4);
        m.always_ff(vec![VStmt::NonBlocking {
            lhs: LValue::net("w"),
            rhs: VExpr::const_u64(0, 4),
        }]);
        assert!(Netlist::elaborate(&m).is_err());
    }

    #[test]
    fn memory_read_tracks_fanout() {
        let mut m = VModule::new("m");
        m.add_memory("ram", 8, 16);
        m.add_wire("addr", 4);
        m.add_wire("q", 8);
        m.assign(LValue::net("addr"), VExpr::const_u64(3, 4));
        m.assign(LValue::net("q"), VExpr::Index("ram".into(), Box::new(VExpr::net("addr"))));
        let nl = Netlist::elaborate(&m).expect("elaborates");
        let ram = nl.mem_id("ram").expect("ram");
        assert_eq!(nl.mem_fanout[ram.0], vec![1]);
    }
}
