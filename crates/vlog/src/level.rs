//! Levelization of an elaborated netlist.
//!
//! The event-driven simulator in [`crate::sim`] pays a worklist and a
//! change-detection comparison per node evaluation, every cycle. A
//! levelized compiler (the GSIM approach) does that analysis once:
//! it topologically orders the combinational nodes so a single
//! straight-line sweep — no queue, no convergence test — produces the
//! settled value of every net. Combinational loops, which the event
//! simulator can only detect by exhausting a convergence budget, are
//! rejected here *structurally* with a diagnostic naming the nets on
//! the cycle.
//!
//! The pass also groups nodes into *partitions* — weakly-connected
//! components of the combinational dependency graph — and records, for
//! every register, input, and memory, which partitions read it. At
//! runtime a partition whose inputs did not change since its last
//! evaluation is quiescent and can be skipped wholesale; the dirty
//! bits that drive this are maintained by [`crate::lsim::LevelizedSim`].

use crate::ast::{LValue, VStmt};
use crate::netlist::Netlist;
use crate::VlogError;

/// One weakly-connected component of the combinational graph.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Member comb-node indices, in topological evaluation order.
    pub nodes: Vec<usize>,
}

/// The result of levelizing a [`Netlist`]: a loop-free evaluation
/// order, per-node logic depths, and the partition/input structure the
/// quiescence optimization needs.
#[derive(Debug, Clone)]
pub struct Levelized {
    /// All comb-node indices in one global topological order.
    pub order: Vec<usize>,
    /// `level[i]` = logic depth of comb node `i` (0 = reads only
    /// external inputs).
    pub level: Vec<u32>,
    /// Number of distinct levels (`max(level) + 1`; 0 with no nodes).
    pub depth: u32,
    /// The partitions, each with its nodes in topological order.
    pub partitions: Vec<Partition>,
    /// `partition_of[i]` = partition index of comb node `i`.
    pub partition_of: Vec<usize>,
    /// `net_feeds[n]` = partitions reading net `n` as an *external*
    /// input (one that only pokes or the clocked block can change).
    pub net_feeds: Vec<Vec<usize>>,
    /// `mem_feeds[m]` = partitions reading memory `m`. All memory
    /// reads are external: memories are written only sequentially.
    pub mem_feeds: Vec<Vec<usize>>,
    /// `comb_driven[n]` = net `n` has at least one continuous driver
    /// (so the levelized simulator must refuse to poke it).
    pub comb_driven: Vec<bool>,
}

impl Levelized {
    /// Levelizes an elaborated netlist.
    ///
    /// # Errors
    ///
    /// Returns a [`VlogError`] if the combinational graph contains a
    /// cycle (the diagnostic names the nets on it), or if a net is
    /// driven both by a continuous assignment and by the clocked
    /// block — a form the single-sweep evaluation order cannot
    /// represent (the event-driven simulator still accepts it).
    pub fn build(netlist: &Netlist) -> Result<Self, VlogError> {
        let n_nodes = netlist.comb.len();
        let n_nets = netlist.nets.len();

        // Nets with continuous drivers, and their driving nodes.
        let mut drivers: Vec<Vec<usize>> = vec![Vec::new(); n_nets];
        for (i, node) in netlist.comb.iter().enumerate() {
            drivers[node.target.0].push(i);
        }
        let comb_driven: Vec<bool> = drivers.iter().map(|d| !d.is_empty()).collect();

        // A net written by the clocked block *and* continuously
        // assigned would need its comb slice re-derived mid-sweep;
        // reject the mix up front with a real diagnostic.
        let mut ff_written = vec![false; n_nets];
        collect_ff_writes(&netlist.ff, netlist, &mut ff_written);
        for (n, net) in netlist.nets.iter().enumerate() {
            if comb_driven[n] && ff_written[n] {
                return Err(VlogError::new(format!(
                    "net `{}` is driven by both a continuous assignment and the clocked \
                     block; the levelized backend requires disjoint drivers",
                    net.name
                )));
            }
        }

        // Dependency edges at net granularity: node j reads a net that
        // node i drives => i must be evaluated before j.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
        let mut indegree = vec![0usize; n_nodes];
        for (j, node) in netlist.comb.iter().enumerate() {
            for &r in &node.reads {
                for &i in &drivers[r.0] {
                    if !succs[i].contains(&j) {
                        succs[i].push(j);
                        indegree[j] += 1;
                    }
                }
            }
        }

        // Kahn's algorithm; smallest-index-first for a deterministic
        // order independent of HashMap iteration anywhere upstream.
        let mut ready: Vec<usize> = (0..n_nodes).filter(|&i| indegree[i] == 0).collect();
        ready.sort_unstable();
        let mut heap = std::collections::BinaryHeap::new();
        for i in ready {
            heap.push(std::cmp::Reverse(i));
        }
        let mut order = Vec::with_capacity(n_nodes);
        let mut level = vec![0u32; n_nodes];
        let mut remaining = indegree.clone();
        while let Some(std::cmp::Reverse(i)) = heap.pop() {
            order.push(i);
            for &j in &succs[i] {
                level[j] = level[j].max(level[i] + 1);
                remaining[j] -= 1;
                if remaining[j] == 0 {
                    heap.push(std::cmp::Reverse(j));
                }
            }
        }
        if order.len() != n_nodes {
            return Err(cycle_diagnostic(netlist, &succs, &remaining));
        }
        let depth = if n_nodes == 0 { 0 } else { level.iter().max().copied().unwrap_or(0) + 1 };

        // Partitions: weakly-connected components over the dependency
        // edges, plus nodes that drive disjoint slices of one net (so
        // a net's full value is always settled by a single partition).
        let mut uf = UnionFind::new(n_nodes);
        for (i, s) in succs.iter().enumerate() {
            for &j in s {
                uf.union(i, j);
            }
        }
        for d in &drivers {
            for w in d.windows(2) {
                uf.union(w[0], w[1]);
            }
        }
        let mut partition_of = vec![usize::MAX; n_nodes];
        let mut partitions: Vec<Partition> = Vec::new();
        for &i in &order {
            let root = uf.find(i);
            let p = if partition_of[root] == usize::MAX {
                partitions.push(Partition { nodes: Vec::new() });
                partition_of[root] = partitions.len() - 1;
                partitions.len() - 1
            } else {
                partition_of[root]
            };
            partitions[p].nodes.push(i);
        }
        // Re-index from root-representative to per-node.
        let by_root = partition_of.clone();
        for i in 0..n_nodes {
            partition_of[i] = by_root[uf.find(i)];
        }

        // External inputs of each partition: nets with no continuous
        // driver (registers, module inputs, undriven wires) and every
        // memory read.
        let mut net_feeds: Vec<Vec<usize>> = vec![Vec::new(); n_nets];
        let mut mem_feeds: Vec<Vec<usize>> = vec![Vec::new(); netlist.mems.len()];
        for (i, node) in netlist.comb.iter().enumerate() {
            let p = partition_of[i];
            for &r in &node.reads {
                if !comb_driven[r.0] && !net_feeds[r.0].contains(&p) {
                    net_feeds[r.0].push(p);
                }
            }
            for &m in &node.reads_mem {
                if !mem_feeds[m.0].contains(&p) {
                    mem_feeds[m.0].push(p);
                }
            }
        }

        Ok(Self {
            order,
            level,
            depth,
            partitions,
            partition_of,
            net_feeds,
            mem_feeds,
            comb_driven,
        })
    }
}

/// Builds the "combinational loop" error by walking successor edges
/// among the nodes Kahn's algorithm could not retire.
fn cycle_diagnostic(netlist: &Netlist, succs: &[Vec<usize>], remaining: &[usize]) -> VlogError {
    let in_cycle = |i: usize| remaining[i] > 0;
    let start = (0..succs.len()).find(|&i| in_cycle(i)).unwrap_or(0);
    // Follow edges within the stuck subgraph until a node repeats;
    // the tail from its first visit is a genuine cycle.
    let mut path = vec![start];
    let mut seen_at = std::collections::HashMap::new();
    seen_at.insert(start, 0usize);
    let mut cur = start;
    while let Some(&next) = succs[cur].iter().find(|&&j| in_cycle(j)) {
        if let Some(&at) = seen_at.get(&next) {
            path.push(next);
            path.drain(..at);
            break;
        }
        seen_at.insert(next, path.len());
        path.push(next);
        cur = next;
    }
    let names: Vec<&str> =
        path.iter().map(|&i| netlist.nets[netlist.comb[i].target.0].name.as_str()).collect();
    VlogError::new(format!("combinational loop: {}", names.join(" -> ")))
}

/// Marks every net the clocked block assigns (directly or under `if`).
fn collect_ff_writes(stmts: &[VStmt], netlist: &Netlist, out: &mut Vec<bool>) {
    for st in stmts {
        match st {
            VStmt::NonBlocking { lhs, .. } => match lhs {
                LValue::Net(n) | LValue::Slice(n, _, _) => {
                    if let Some(id) = netlist.net_id(n) {
                        out[id.0] = true;
                    }
                }
                LValue::Index(_, _) => {}
            },
            VStmt::If { then_body, else_body, .. } => {
                collect_ff_writes(then_body, netlist, out);
                collect_ff_writes(else_body, netlist, out);
            }
        }
    }
}

/// Path-compressing union-find over node indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n).collect() }
    }

    fn find(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = i;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller index wins so representative choice is stable.
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{LValue, VBinOp, VExpr, VModule, VStmt, VUnOp};

    #[test]
    fn chain_is_ordered_and_leveled() {
        let mut m = VModule::new("m");
        m.add_input("a", 4);
        m.add_wire("x", 4);
        m.add_wire("y", 4);
        m.assign(
            LValue::net("x"),
            VExpr::binary(VBinOp::Add, VExpr::net("a"), VExpr::const_u64(1, 4)),
        );
        m.assign(LValue::net("y"), VExpr::unary(VUnOp::Not, VExpr::net("x")));
        let nl = Netlist::elaborate(&m).expect("elaborates");
        let lv = Levelized::build(&nl).expect("levelizes");
        assert_eq!(lv.order, vec![0, 1]);
        assert_eq!(lv.level, vec![0, 1]);
        assert_eq!(lv.depth, 2);
        assert_eq!(lv.partitions.len(), 1);
    }

    #[test]
    fn independent_cones_get_separate_partitions() {
        let mut m = VModule::new("m");
        m.add_input("a", 4);
        m.add_input("b", 4);
        m.add_wire("x", 4);
        m.add_wire("y", 4);
        m.assign(LValue::net("x"), VExpr::unary(VUnOp::Not, VExpr::net("a")));
        m.assign(LValue::net("y"), VExpr::unary(VUnOp::Not, VExpr::net("b")));
        let nl = Netlist::elaborate(&m).expect("elaborates");
        let lv = Levelized::build(&nl).expect("levelizes");
        assert_eq!(lv.partitions.len(), 2);
        let a = nl.net_id("a").expect("a");
        assert_eq!(lv.net_feeds[a.0], vec![lv.partition_of[0]]);
    }

    #[test]
    fn combinational_loop_named_in_diagnostic() {
        let mut m = VModule::new("m");
        m.add_wire("p", 1);
        m.add_wire("q", 1);
        m.assign(LValue::net("p"), VExpr::unary(VUnOp::Not, VExpr::net("q")));
        m.assign(LValue::net("q"), VExpr::net("p"));
        let nl = Netlist::elaborate(&m).expect("elaborates");
        let err = Levelized::build(&nl).expect_err("loop must be rejected");
        let msg = err.message();
        assert!(msg.contains("combinational loop"), "{msg}");
        assert!(msg.contains('p') && msg.contains('q'), "{msg}");
    }

    #[test]
    fn mixed_comb_and_clocked_driver_rejected() {
        let mut m = VModule::new("m");
        m.add_reg("r", 4);
        m.assign(LValue::Slice("r".into(), 1, 0), VExpr::const_u64(3, 2));
        m.always_ff(vec![VStmt::NonBlocking {
            lhs: LValue::Slice("r".into(), 3, 2),
            rhs: VExpr::const_u64(1, 2),
        }]);
        let nl = Netlist::elaborate(&m).expect("elaborates");
        let err = Levelized::build(&nl).expect_err("mixed drivers rejected");
        assert!(err.message().contains("disjoint drivers"), "{}", err.message());
    }

    #[test]
    fn disjoint_slice_drivers_share_a_partition() {
        let mut m = VModule::new("m");
        m.add_input("a", 2);
        m.add_input("b", 2);
        m.add_wire("w", 4);
        m.assign(LValue::Slice("w".into(), 3, 2), VExpr::net("a"));
        m.assign(LValue::Slice("w".into(), 1, 0), VExpr::net("b"));
        let nl = Netlist::elaborate(&m).expect("elaborates");
        let lv = Levelized::build(&nl).expect("levelizes");
        assert_eq!(lv.partitions.len(), 1, "slice drivers of one net must co-reside");
    }

    #[test]
    fn memory_reads_are_partition_inputs() {
        let mut m = VModule::new("m");
        m.add_memory("ram", 8, 16);
        m.add_input("addr", 4);
        m.add_wire("q", 8);
        m.assign(LValue::net("q"), VExpr::Index("ram".into(), Box::new(VExpr::net("addr"))));
        let nl = Netlist::elaborate(&m).expect("elaborates");
        let lv = Levelized::build(&nl).expect("levelizes");
        let ram = nl.mem_id("ram").expect("ram");
        assert_eq!(lv.mem_feeds[ram.0].len(), 1);
    }
}
