//! Value-change-dump output shared by both netlist simulators.
//!
//! One writer, one format: the event-driven [`crate::sim::NetlistSim`]
//! and the compiled [`crate::lsim::LevelizedSim`] both dump through
//! this module, so a waveform produced by either backend for the same
//! stimulus is byte-identical — which the differential suite checks.

use crate::netlist::Net;
use bitv::BitVector;
use std::io::Write;

/// VCD writer state: the sink plus the last dumped value of every net.
pub(crate) struct Vcd {
    sink: Box<dyn Write + Send + Sync>,
    last: Vec<BitVector>,
}

/// Compact printable VCD identifier for net `net`.
pub(crate) fn id(net: usize) -> String {
    let mut n = net;
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

impl Vcd {
    /// Writes the header and initial `$dumpvars` block, capturing
    /// `values` as the baseline for change detection.
    pub(crate) fn start(
        mut sink: Box<dyn Write + Send + Sync>,
        nets: &[Net],
        values: Vec<BitVector>,
    ) -> std::io::Result<Self> {
        writeln!(sink, "$timescale 1ns $end")?;
        writeln!(sink, "$scope module dut $end")?;
        for (i, n) in nets.iter().enumerate() {
            writeln!(sink, "$var wire {} {} {} $end", n.width, id(i), n.name)?;
        }
        writeln!(sink, "$upscope $end")?;
        writeln!(sink, "$enddefinitions $end")?;
        writeln!(sink, "#0")?;
        writeln!(sink, "$dumpvars")?;
        for (i, v) in values.iter().enumerate() {
            writeln!(sink, "b{v:b} {}", id(i))?;
        }
        writeln!(sink, "$end")?;
        Ok(Self { sink, last: values })
    }

    /// Appends change records for every net whose current value (from
    /// `value_of`) differs from the last dump, stamped at `cycle`.
    pub(crate) fn dump_changes(&mut self, cycle: u64, value_of: impl Fn(usize) -> BitVector) {
        let mut header_written = false;
        for i in 0..self.last.len() {
            let v = value_of(i);
            if self.last[i] != v {
                if !header_written {
                    let _ = writeln!(self.sink, "#{cycle}");
                    header_written = true;
                }
                let _ = writeln!(self.sink, "b{v:b} {}", id(i));
                self.last[i] = v;
            }
        }
    }

    /// Releases the sink.
    pub(crate) fn into_sink(self) -> Box<dyn Write + Send + Sync> {
        self.sink
    }
}
