//! Compiled levelized simulation of an elaborated netlist.
//!
//! Where [`crate::sim::NetlistSim`] re-discovers the evaluation order
//! every cycle with an event worklist, [`LevelizedSim`] compiles it
//! once (the GSIM approach): the [`crate::level`] pass topologically
//! orders the combinational nodes, and each clock edge becomes one
//! ordered register sweep followed by straight-line re-evaluation of
//! only the *dirty* partitions — no event queue, no convergence
//! budget, no per-node change test.
//!
//! Values live in a flat dense arena: every net of 64 bits or fewer
//! occupies one `u64` word and is evaluated with 2-state bit-parallel
//! word operations whose masking reproduces [`bitv::BitVector`]
//! semantics exactly; wider nets fall back to `BitVector` evaluation.
//! The 4-state unknowns a commercial simulator would propagate
//! collapse to 2-state zero-initialised values — the same X-init
//! choice the event-driven simulator makes, so the two backends are
//! bit-identical from reset onward.

use crate::ast::{LValue, VExpr, VModule, VStmt, VUnOp};
use crate::level::Levelized;
use crate::netlist::Netlist;
use crate::vcd::Vcd;
use crate::VlogError;
use bitv::BitVector;
use std::io::Write;

/// Counters describing the compiled structure and the work a run
/// actually performed; exported as the `levelized` block of
/// `vlog-stats/1`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Logic depth of the combinational cone (number of levels).
    pub levels: u32,
    /// Number of independent combinational partitions.
    pub partitions: u64,
    /// Combinational node evaluations performed.
    pub node_evals: u64,
    /// Partitions evaluated at clock edges (their inputs changed).
    pub partitions_evaluated: u64,
    /// Partitions skipped at clock edges (quiescent).
    pub partitions_skipped: u64,
}

impl LevelStats {
    /// Fraction of per-edge partition visits that were skipped.
    #[must_use]
    pub fn skip_rate(&self) -> f64 {
        let total = self.partitions_evaluated + self.partitions_skipped;
        if total == 0 {
            0.0
        } else {
            self.partitions_skipped as f64 / total as f64
        }
    }
}

/// Where a net's value lives in the arena.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Index into the dense `u64` word arena (width <= 64).
    Narrow(usize),
    /// Index into the `BitVector` side arena (width > 64).
    Wide(usize),
}

/// Backing store for one memory.
#[derive(Debug, Clone)]
enum MemCells {
    Narrow { width: u32, cells: Vec<u64> },
    Wide { width: u32, cells: Vec<BitVector> },
}

impl MemCells {
    fn len(&self) -> usize {
        match self {
            Self::Narrow { cells, .. } => cells.len(),
            Self::Wide { cells, .. } => cells.len(),
        }
    }
}

/// The flat dense state arena plus the slot map describing it.
#[derive(Debug, Clone)]
struct Arena {
    slots: Vec<Slot>,
    widths: Vec<u32>,
    narrow: Vec<u64>,
    wide: Vec<BitVector>,
    mems: Vec<MemCells>,
}

/// A computed value on its way into the arena.
enum Val {
    U(u64),
    B(BitVector),
}

impl Val {
    fn as_u64(&self) -> u64 {
        match self {
            Self::U(v) => *v,
            Self::B(b) => b.to_u64_lossy(),
        }
    }

    fn into_bv(self, width: u32) -> BitVector {
        match self {
            Self::U(v) => BitVector::from_u64(v, width),
            Self::B(b) => b,
        }
    }

    fn is_zero(&self) -> bool {
        match self {
            Self::U(v) => *v == 0,
            Self::B(b) => b.is_zero(),
        }
    }
}

/// Mask selecting the low `w` bits.
fn mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Sign-extends the low `w` bits of `v` to an `i64`.
fn sx(v: u64, w: u32) -> i64 {
    let s = 64 - w;
    ((v << s) as i64) >> s
}

/// A compiled 2-state expression over narrow (<= 64-bit) values.
/// Every evaluation returns a value masked to the expression's width.
#[derive(Debug, Clone)]
enum NExpr {
    Const(u64),
    Net(usize),
    Slice { net: usize, lo: u32, w: u32 },
    MemRead { mem: usize, addr: Box<NExpr> },
    Un { op: VUnOp, w: u32, a: Box<NExpr> },
    Bin { op: crate::ast::VBinOp, w: u32, a: Box<NExpr>, b: Box<NExpr> },
    Cond { c: Box<NExpr>, t: Box<NExpr>, f: Box<NExpr> },
    Concat { hi: Box<NExpr>, lo: Box<NExpr>, lo_w: u32 },
    Sext { a: Box<NExpr>, from: u32, to: u32 },
    Trunc { a: Box<NExpr>, w: u32 },
}

impl NExpr {
    fn eval(&self, ar: &Arena) -> u64 {
        use crate::ast::VBinOp;
        match self {
            Self::Const(v) => *v,
            Self::Net(i) => ar.narrow[*i],
            Self::Slice { net, lo, w } => (ar.narrow[*net] >> lo) & mask(*w),
            Self::MemRead { mem, addr } => {
                let MemCells::Narrow { cells, .. } = &ar.mems[*mem] else {
                    unreachable!("narrow-compiled read of wide memory")
                };
                let a = addr.eval(ar) % cells.len() as u64;
                cells[a as usize]
            }
            Self::Un { op, w, a } => {
                let v = a.eval(ar);
                match op {
                    VUnOp::Not => !v & mask(*w),
                    VUnOp::Neg => v.wrapping_neg() & mask(*w),
                    VUnOp::RedOr => u64::from(v != 0),
                    VUnOp::LNot => u64::from(v == 0),
                }
            }
            Self::Bin { op, w, a, b } => {
                let x = a.eval(ar);
                let y = b.eval(ar);
                let w = *w;
                let m = mask(w);
                match op {
                    VBinOp::Add => x.wrapping_add(y) & m,
                    VBinOp::Sub => x.wrapping_sub(y) & m,
                    VBinOp::Mul => x.wrapping_mul(y) & m,
                    VBinOp::Div => x.checked_div(y).unwrap_or(m),
                    VBinOp::Mod => x.checked_rem(y).unwrap_or(x),
                    VBinOp::SDiv => {
                        if y == 0 {
                            m
                        } else {
                            (sx(x, w).wrapping_div(sx(y, w)) as u64) & m
                        }
                    }
                    VBinOp::SRem => {
                        if y == 0 {
                            x
                        } else {
                            (sx(x, w).wrapping_rem(sx(y, w)) as u64) & m
                        }
                    }
                    VBinOp::And => x & y,
                    VBinOp::Or => x | y,
                    VBinOp::Xor => x ^ y,
                    VBinOp::Shl => {
                        if y >= u64::from(w) {
                            0
                        } else {
                            (x << y) & m
                        }
                    }
                    VBinOp::Shr => {
                        if y >= u64::from(w) {
                            0
                        } else {
                            x >> y
                        }
                    }
                    VBinOp::AShr => {
                        if y >= u64::from(w) {
                            if (x >> (w - 1)) & 1 == 1 {
                                m
                            } else {
                                0
                            }
                        } else {
                            (sx(x, w) >> y) as u64 & m
                        }
                    }
                    VBinOp::Eq => u64::from(x == y),
                    VBinOp::Ne => u64::from(x != y),
                    VBinOp::Lt => u64::from(x < y),
                    VBinOp::Le => u64::from(x <= y),
                    VBinOp::SLt => u64::from(sx(x, w) < sx(y, w)),
                    VBinOp::SLe => u64::from(sx(x, w) <= sx(y, w)),
                }
            }
            Self::Cond { c, t, f } => {
                if c.eval(ar) == 0 {
                    f.eval(ar)
                } else {
                    t.eval(ar)
                }
            }
            Self::Concat { hi, lo, lo_w } => (hi.eval(ar) << lo_w) | lo.eval(ar),
            Self::Sext { a, from, to } => {
                let v = a.eval(ar);
                if (v >> (from - 1)) & 1 == 1 {
                    v | (mask(*to) & !mask(*from))
                } else {
                    v
                }
            }
            Self::Trunc { a, w } => a.eval(ar) & mask(*w),
        }
    }
}

/// A compiled expression over wide values: the same shape as
/// [`VExpr`] but with names resolved to arena indices. Evaluation
/// mirrors [`crate::netlist::eval_expr`] operation for operation.
#[derive(Debug, Clone)]
enum WExpr {
    Const(BitVector),
    Net(usize),
    Slice { net: usize, hi: u32, lo: u32 },
    MemRead { mem: usize, addr: Box<WExpr> },
    Un { op: VUnOp, a: Box<WExpr> },
    Bin { op: crate::ast::VBinOp, a: Box<WExpr>, b: Box<WExpr> },
    Cond { c: Box<WExpr>, t: Box<WExpr>, f: Box<WExpr> },
    Concat(Vec<WExpr>),
    Zext { a: Box<WExpr>, add: u32 },
    Sext { a: Box<WExpr>, to: u32 },
    Trunc { a: Box<WExpr>, w: u32 },
}

impl WExpr {
    fn eval(&self, ar: &Arena) -> BitVector {
        use crate::ast::VBinOp;
        match self {
            Self::Const(c) => c.clone(),
            Self::Net(i) => ar.net_value(*i),
            Self::Slice { net, hi, lo } => ar.net_value(*net).slice(*hi, *lo),
            Self::MemRead { mem, addr } => {
                let a = addr.eval(ar).to_u64_lossy();
                let depth = ar.mems[*mem].len() as u64;
                ar.mem_value(*mem, (a % depth) as usize)
            }
            Self::Un { op, a } => {
                let v = a.eval(ar);
                match op {
                    VUnOp::Not => v.not(),
                    VUnOp::Neg => v.wrapping_neg(),
                    VUnOp::RedOr => BitVector::from_bool(!v.is_zero()),
                    VUnOp::LNot => BitVector::from_bool(v.is_zero()),
                }
            }
            Self::Bin { op, a, b } => {
                let x = a.eval(ar);
                let y = b.eval(ar);
                let amount =
                    || u32::try_from(y.to_u64_lossy().min(u64::from(u32::MAX))).expect("clamped");
                match op {
                    VBinOp::Add => x.wrapping_add(&y),
                    VBinOp::Sub => x.wrapping_sub(&y),
                    VBinOp::Mul => x.wrapping_mul(&y),
                    VBinOp::Div => x.unsigned_div(&y),
                    VBinOp::Mod => x.unsigned_rem(&y),
                    VBinOp::SDiv => x.signed_div(&y),
                    VBinOp::SRem => x.signed_rem(&y),
                    VBinOp::And => x.and(&y),
                    VBinOp::Or => x.or(&y),
                    VBinOp::Xor => x.xor(&y),
                    VBinOp::Shl => x.shl(amount()),
                    VBinOp::Shr => x.lshr(amount()),
                    VBinOp::AShr => x.ashr(amount()),
                    VBinOp::Eq => BitVector::from_bool(x == y),
                    VBinOp::Ne => BitVector::from_bool(x != y),
                    VBinOp::Lt => BitVector::from_bool(x.cmp_unsigned(&y).is_lt()),
                    VBinOp::Le => BitVector::from_bool(x.cmp_unsigned(&y).is_le()),
                    VBinOp::SLt => BitVector::from_bool(x.cmp_signed(&y).is_lt()),
                    VBinOp::SLe => BitVector::from_bool(x.cmp_signed(&y).is_le()),
                }
            }
            Self::Cond { c, t, f } => {
                if c.eval(ar).is_zero() {
                    f.eval(ar)
                } else {
                    t.eval(ar)
                }
            }
            Self::Concat(parts) => {
                let mut it = parts.iter();
                let mut acc = it.next().expect("non-empty concat").eval(ar);
                for p in it {
                    acc = acc.concat(&p.eval(ar));
                }
                acc
            }
            Self::Zext { a, add } => {
                let v = a.eval(ar);
                let total = v.width() + add;
                v.zext(total)
            }
            Self::Sext { a, to } => a.eval(ar).sext(*to),
            Self::Trunc { a, w } => a.eval(ar).trunc(*w),
        }
    }
}

/// Either lane of the compiled expression pipeline.
#[derive(Debug, Clone)]
enum CExpr {
    N(NExpr),
    W(WExpr),
}

impl CExpr {
    fn eval(&self, ar: &Arena) -> Val {
        match self {
            Self::N(n) => Val::U(n.eval(ar)),
            Self::W(w) => Val::B(w.eval(ar)),
        }
    }
}

/// One compiled combinational node: evaluate `expr`, write bits
/// `hi..=lo` of `net`.
#[derive(Debug, Clone)]
struct CNode {
    net: usize,
    hi: u32,
    lo: u32,
    expr: CExpr,
}

/// One compiled statement of the clocked block.
#[derive(Debug, Clone)]
enum CStmt {
    NetAssign { net: usize, hi: u32, lo: u32, rhs: CExpr },
    MemAssign { mem: usize, addr: CExpr, rhs: CExpr },
    If { cond: CExpr, then_body: Vec<CStmt>, else_body: Vec<CStmt> },
}

/// A staged non-blocking update, computed against pre-edge values.
enum Update {
    Net { net: usize, hi: u32, lo: u32, val: Val },
    Mem { mem: usize, index: usize, val: Val },
}

impl Arena {
    /// Reconstructs the full value of net `i`.
    fn net_value(&self, i: usize) -> BitVector {
        match self.slots[i] {
            Slot::Narrow(s) => BitVector::from_u64(self.narrow[s], self.widths[i]),
            Slot::Wide(s) => self.wide[s].clone(),
        }
    }

    fn mem_value(&self, mem: usize, index: usize) -> BitVector {
        match &self.mems[mem] {
            MemCells::Narrow { width, cells } => BitVector::from_u64(cells[index], *width),
            MemCells::Wide { cells, .. } => cells[index].clone(),
        }
    }

    /// Writes bits `hi..=lo` of net `net`; returns whether the stored
    /// value changed.
    fn write_net(&mut self, net: usize, hi: u32, lo: u32, val: Val) -> bool {
        let w = self.widths[net];
        match self.slots[net] {
            Slot::Narrow(s) => {
                let v = val.as_u64();
                let new = if lo == 0 && hi == w - 1 {
                    v
                } else {
                    let m = mask(hi - lo + 1) << lo;
                    (self.narrow[s] & !m) | ((v << lo) & m)
                };
                let changed = self.narrow[s] != new;
                self.narrow[s] = new;
                changed
            }
            Slot::Wide(s) => {
                let bv = val.into_bv(hi - lo + 1);
                let new =
                    if lo == 0 && hi == w - 1 { bv } else { self.wide[s].with_slice(hi, lo, &bv) };
                let changed = self.wide[s] != new;
                self.wide[s] = new;
                changed
            }
        }
    }

    /// Writes one memory cell; returns whether it changed.
    fn write_mem(&mut self, mem: usize, index: usize, val: Val) -> bool {
        match &mut self.mems[mem] {
            MemCells::Narrow { cells, .. } => {
                let v = val.as_u64();
                let changed = cells[index] != v;
                cells[index] = v;
                changed
            }
            MemCells::Wide { width, cells } => {
                let bv = val.into_bv(*width);
                let changed = cells[index] != bv;
                cells[index] = bv;
                changed
            }
        }
    }
}

/// A compiled levelized simulator over an elaborated netlist.
///
/// Exposes the same `peek`/`poke`/`clock`/VCD surface as
/// [`crate::sim::NetlistSim`] and is bit-identical to it on every
/// accepted design; see [`crate::AnySim`] for backend-agnostic use.
pub struct LevelizedSim {
    netlist: Netlist,
    lev: Levelized,
    nodes: Vec<CNode>,
    cff: Vec<CStmt>,
    arena: Arena,
    dirty: Vec<bool>,
    cycles: u64,
    stats: LevelStats,
    vcd: Option<Vcd>,
}

impl std::fmt::Debug for LevelizedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LevelizedSim")
            .field("nets", &self.netlist.nets.len())
            .field("levels", &self.stats.levels)
            .field("partitions", &self.stats.partitions)
            .field("cycles", &self.cycles)
            .finish_non_exhaustive()
    }
}

impl Clone for LevelizedSim {
    /// Clones the simulator state; an attached VCD sink is not cloned
    /// (the copy starts without waveform dumping).
    fn clone(&self) -> Self {
        Self {
            netlist: self.netlist.clone(),
            lev: self.lev.clone(),
            nodes: self.nodes.clone(),
            cff: self.cff.clone(),
            arena: self.arena.clone(),
            dirty: self.dirty.clone(),
            cycles: self.cycles,
            stats: self.stats,
            vcd: None,
        }
    }
}

impl LevelizedSim {
    /// Elaborates `module`, levelizes it, compiles the evaluation
    /// program, and settles the initial (all-zero) state.
    ///
    /// # Errors
    ///
    /// Propagates elaboration errors; additionally rejects
    /// combinational loops (with a diagnostic naming the nets on the
    /// cycle) and nets driven by both a continuous assignment and the
    /// clocked block.
    pub fn elaborate(module: &VModule) -> Result<Self, VlogError> {
        Self::from_netlist(Netlist::elaborate(module)?)
    }

    /// Builds the simulator from an already-elaborated netlist.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LevelizedSim::elaborate`], minus
    /// elaboration itself.
    pub fn from_netlist(netlist: Netlist) -> Result<Self, VlogError> {
        let lev = Levelized::build(&netlist)?;

        // Lay out the arena: one dense u64 word per narrow net, a
        // BitVector side table for the rest.
        let mut slots = Vec::with_capacity(netlist.nets.len());
        let mut narrow = Vec::new();
        let mut wide = Vec::new();
        for n in &netlist.nets {
            if n.width <= 64 {
                slots.push(Slot::Narrow(narrow.len()));
                narrow.push(0u64);
            } else {
                slots.push(Slot::Wide(wide.len()));
                wide.push(BitVector::zero(n.width));
            }
        }
        let widths: Vec<u32> = netlist.nets.iter().map(|n| n.width).collect();
        let mems: Vec<MemCells> = netlist
            .mems
            .iter()
            .map(|m| {
                if m.width <= 64 {
                    MemCells::Narrow { width: m.width, cells: vec![0u64; m.depth as usize] }
                } else {
                    MemCells::Wide {
                        width: m.width,
                        cells: vec![BitVector::zero(m.width); m.depth as usize],
                    }
                }
            })
            .collect();
        let arena = Arena { slots, widths, narrow, wide, mems };

        let c = Compiler { netlist: &netlist, arena: &arena };
        let nodes = netlist
            .comb
            .iter()
            .map(|node| {
                Ok(CNode {
                    net: node.target.0,
                    hi: node.hi,
                    lo: node.lo,
                    expr: c.compile(&node.expr)?,
                })
            })
            .collect::<Result<Vec<_>, VlogError>>()?;
        let cff = c.compile_stmts(&netlist.ff)?;

        let dirty = vec![true; lev.partitions.len()];
        let stats = LevelStats {
            levels: lev.depth,
            partitions: lev.partitions.len() as u64,
            ..LevelStats::default()
        };
        let mut sim = Self { netlist, lev, nodes, cff, arena, dirty, cycles: 0, stats, vcd: None };
        sim.eval_dirty(false);
        Ok(sim)
    }

    /// The elaborated netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The levelization this simulator was compiled from.
    #[must_use]
    pub fn levelized(&self) -> &Levelized {
        &self.lev
    }

    /// Structure and work counters.
    #[must_use]
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    /// Total rising edges applied.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total combinational node evaluations — comparable to
    /// [`crate::sim::NetlistSim::events`].
    #[must_use]
    pub fn node_evals(&self) -> u64 {
        self.stats.node_evals
    }

    /// Current value of a net.
    ///
    /// # Errors
    ///
    /// Returns a [`VlogError`] if the net does not exist.
    pub fn peek(&self, name: &str) -> Result<BitVector, VlogError> {
        let id = self
            .netlist
            .net_id(name)
            .ok_or_else(|| VlogError::new(format!("net `{name}` does not exist")))?;
        Ok(self.arena.net_value(id.0))
    }

    /// Current value of one memory cell; the address wraps at the
    /// depth.
    ///
    /// # Errors
    ///
    /// Returns a [`VlogError`] if the memory does not exist.
    pub fn peek_memory(&self, name: &str, addr: u64) -> Result<BitVector, VlogError> {
        let id = self
            .netlist
            .mem_id(name)
            .ok_or_else(|| VlogError::new(format!("memory `{name}` does not exist")))?;
        let depth = self.netlist.mems[id.0].depth;
        Ok(self.arena.mem_value(id.0, (addr % depth) as usize))
    }

    /// Forces a net value (module inputs, or registers for test setup)
    /// and re-evaluates the partitions reading it.
    ///
    /// # Errors
    ///
    /// Returns a [`VlogError`] if the net does not exist, the width
    /// differs, or the net has a continuous driver (whose re-evaluation
    /// would immediately overwrite the poked value — poke registers
    /// and inputs instead; the event-driven backend shares the same
    /// restriction in spirit but does not enforce it).
    pub fn poke(&mut self, name: &str, value: BitVector) -> Result<(), VlogError> {
        let id = self
            .netlist
            .net_id(name)
            .ok_or_else(|| VlogError::new(format!("net `{name}` does not exist")))?;
        let w = self.netlist.nets[id.0].width;
        if value.width() != w {
            return Err(VlogError::new(format!(
                "poke of `{name}`: value is {} bits, net is {w}",
                value.width()
            )));
        }
        if self.lev.comb_driven[id.0] {
            return Err(VlogError::new(format!(
                "cannot poke `{name}`: it has a continuous driver (levelized backend)"
            )));
        }
        if self.arena.write_net(id.0, w - 1, 0, Val::B(value)) {
            for &p in &self.lev.net_feeds[id.0] {
                self.dirty[p] = true;
            }
            self.eval_dirty(false);
        }
        Ok(())
    }

    /// Writes one memory cell directly (program loading / test setup)
    /// and re-evaluates the partitions reading the memory.
    ///
    /// # Errors
    ///
    /// Returns a [`VlogError`] if the memory does not exist or the
    /// width differs.
    pub fn poke_memory(
        &mut self,
        name: &str,
        addr: u64,
        value: BitVector,
    ) -> Result<(), VlogError> {
        let id = self
            .netlist
            .mem_id(name)
            .ok_or_else(|| VlogError::new(format!("memory `{name}` does not exist")))?;
        let m = &self.netlist.mems[id.0];
        if value.width() != m.width {
            return Err(VlogError::new(format!(
                "poke of `{name}`: value is {} bits, cells are {}",
                value.width(),
                m.width
            )));
        }
        let i = (addr % m.depth) as usize;
        if self.arena.write_mem(id.0, i, Val::B(value)) {
            for &p in &self.lev.mem_feeds[id.0] {
                self.dirty[p] = true;
            }
            self.eval_dirty(false);
        }
        Ok(())
    }

    /// Applies `n` rising clock edges.
    ///
    /// # Errors
    ///
    /// Never fails — loops were rejected at compile time — but keeps
    /// the [`crate::sim::NetlistSim::clock`] signature so the two
    /// backends are drop-in interchangeable.
    pub fn clock(&mut self, n: u64) -> Result<(), VlogError> {
        let (ev0, sk0) = (self.stats.partitions_evaluated, self.stats.partitions_skipped);
        for _ in 0..n {
            self.edge();
        }
        // One summary event per clock() call, never per edge — the
        // inner loop stays free of even the gate check.
        obs::log::event_with(obs::Level::Debug, "vlog.lsim", "clock", || {
            obs::Json::obj()
                .with("edges", n)
                .with("cycles", self.cycles)
                .with("partitions_evaluated", self.stats.partitions_evaluated - ev0)
                .with("partitions_skipped", self.stats.partitions_skipped - sk0)
        });
        Ok(())
    }

    /// Starts dumping a value-change dump of every scalar net to
    /// `sink` — the same format, identifiers, and change records as
    /// the event-driven backend, byte for byte.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn start_vcd(&mut self, sink: Box<dyn Write + Send + Sync>) -> std::io::Result<()> {
        let values: Vec<BitVector> =
            (0..self.netlist.nets.len()).map(|i| self.arena.net_value(i)).collect();
        self.vcd = Some(Vcd::start(sink, &self.netlist.nets, values)?);
        Ok(())
    }

    /// Stops VCD dumping and returns the sink.
    pub fn stop_vcd(&mut self) -> Option<Box<dyn Write + Send + Sync>> {
        self.vcd.take().map(Vcd::into_sink)
    }

    /// One rising clock edge: the ordered register sweep, dirty
    /// marking, and straight-line re-evaluation of dirty partitions.
    fn edge(&mut self) {
        let mut updates = Vec::new();
        exec_stmts(&self.cff, &self.arena, &mut updates);
        for u in updates {
            match u {
                Update::Net { net, hi, lo, val } => {
                    if self.arena.write_net(net, hi, lo, val) {
                        for &p in &self.lev.net_feeds[net] {
                            self.dirty[p] = true;
                        }
                    }
                }
                Update::Mem { mem, index, val } => {
                    if self.arena.write_mem(mem, index, val) {
                        for &p in &self.lev.mem_feeds[mem] {
                            self.dirty[p] = true;
                        }
                    }
                }
            }
        }
        self.cycles += 1;
        self.eval_dirty(true);
        if let Some(vcd) = &mut self.vcd {
            let arena = &self.arena;
            vcd.dump_changes(self.cycles, |i| arena.net_value(i));
        }
    }

    /// Evaluates every dirty partition in topological order and clears
    /// its bit. `at_edge` controls whether the skip counters advance
    /// (pokes settle too, but only edges measure quiescence).
    fn eval_dirty(&mut self, at_edge: bool) {
        for p in 0..self.dirty.len() {
            if !self.dirty[p] {
                if at_edge {
                    self.stats.partitions_skipped += 1;
                }
                continue;
            }
            self.dirty[p] = false;
            if at_edge {
                self.stats.partitions_evaluated += 1;
            }
            for &i in &self.lev.partitions[p].nodes {
                let node = &self.nodes[i];
                let val = node.expr.eval(&self.arena);
                self.arena.write_net(node.net, node.hi, node.lo, val);
                self.stats.node_evals += 1;
            }
        }
    }
}

/// Executes the compiled clocked block against pre-edge values,
/// staging non-blocking updates in program order (last write wins on
/// apply — Verilog semantics, identical to the event-driven backend).
fn exec_stmts(stmts: &[CStmt], ar: &Arena, out: &mut Vec<Update>) {
    for st in stmts {
        match st {
            CStmt::NetAssign { net, hi, lo, rhs } => {
                out.push(Update::Net { net: *net, hi: *hi, lo: *lo, val: rhs.eval(ar) });
            }
            CStmt::MemAssign { mem, addr, rhs } => {
                let a = addr.eval(ar).as_u64();
                let depth = ar.mems[*mem].len() as u64;
                out.push(Update::Mem { mem: *mem, index: (a % depth) as usize, val: rhs.eval(ar) });
            }
            CStmt::If { cond, then_body, else_body } => {
                let body = if cond.eval(ar).is_zero() { else_body } else { then_body };
                exec_stmts(body, ar, out);
            }
        }
    }
}

/// Compiles validated expressions and statements into the two-lane
/// evaluation program.
struct Compiler<'a> {
    netlist: &'a Netlist,
    arena: &'a Arena,
}

impl Compiler<'_> {
    fn compile(&self, e: &VExpr) -> Result<CExpr, VlogError> {
        Ok(match self.narrow(e)? {
            Some(n) => CExpr::N(n),
            None => CExpr::W(self.wide(e)?),
        })
    }

    /// Attempts the narrow (u64) lane; `None` means some value in the
    /// tree is wider than 64 bits and the whole node takes the
    /// `BitVector` lane.
    fn narrow(&self, e: &VExpr) -> Result<Option<NExpr>, VlogError> {
        let out = match e {
            VExpr::Net(n) => {
                let id = self.net(n)?;
                match self.arena.slots[id] {
                    Slot::Narrow(s) => Some(NExpr::Net(s)),
                    Slot::Wide(_) => None,
                }
            }
            VExpr::Const(c) => {
                if c.width() <= 64 {
                    Some(NExpr::Const(c.to_u64_lossy()))
                } else {
                    None
                }
            }
            VExpr::Index(m, a) => {
                let id = self.mem(m)?;
                let narrow_cells = matches!(self.arena.mems[id], MemCells::Narrow { .. });
                match (narrow_cells, self.narrow(a)?) {
                    (true, Some(addr)) => Some(NExpr::MemRead { mem: id, addr: Box::new(addr) }),
                    _ => None,
                }
            }
            VExpr::Slice(n, hi, lo) => {
                let id = self.net(n)?;
                match self.arena.slots[id] {
                    Slot::Narrow(s) => Some(NExpr::Slice { net: s, lo: *lo, w: hi - lo + 1 }),
                    Slot::Wide(_) => None,
                }
            }
            VExpr::Unary(op, a) => {
                let wa = self.netlist.expr_width(a)?;
                match (wa <= 64, self.narrow(a)?) {
                    (true, Some(na)) => Some(NExpr::Un { op: *op, w: wa, a: Box::new(na) }),
                    _ => None,
                }
            }
            VExpr::Binary(op, a, b) => {
                let wa = self.netlist.expr_width(a)?;
                let wb = self.netlist.expr_width(b)?;
                if wa > 64 || wb > 64 {
                    None
                } else {
                    match (self.narrow(a)?, self.narrow(b)?) {
                        (Some(na), Some(nb)) => {
                            Some(NExpr::Bin { op: *op, w: wa, a: Box::new(na), b: Box::new(nb) })
                        }
                        _ => None,
                    }
                }
            }
            VExpr::Cond(c, t, f) => match (self.narrow(c)?, self.narrow(t)?, self.narrow(f)?) {
                (Some(nc), Some(nt), Some(nf)) => {
                    Some(NExpr::Cond { c: Box::new(nc), t: Box::new(nt), f: Box::new(nf) })
                }
                _ => None,
            },
            VExpr::Concat(parts) => {
                if self.netlist.expr_width(e)? > 64 {
                    None
                } else {
                    let mut it = parts.iter();
                    let first = it.next().expect("non-empty concat");
                    let mut acc = self.narrow(first)?;
                    for p in it {
                        let (Some(hi), Some(lo)) = (acc, self.narrow(p)?) else {
                            acc = None;
                            break;
                        };
                        let lo_w = self.netlist.expr_width(p)?;
                        acc = Some(NExpr::Concat { hi: Box::new(hi), lo: Box::new(lo), lo_w });
                    }
                    acc
                }
            }
            VExpr::Zext(a, add) => {
                if self.netlist.expr_width(a)? + add > 64 {
                    None
                } else {
                    // Zero-extension does not change the stored word.
                    self.narrow(a)?
                }
            }
            VExpr::Sext(a, from, to) => {
                if *to > 64 {
                    None
                } else {
                    self.narrow(a)?.map(|na| NExpr::Sext { a: Box::new(na), from: *from, to: *to })
                }
            }
            VExpr::Trunc(a, w) => self.narrow(a)?.map(|na| NExpr::Trunc { a: Box::new(na), w: *w }),
        };
        Ok(out)
    }

    fn wide(&self, e: &VExpr) -> Result<WExpr, VlogError> {
        Ok(match e {
            VExpr::Net(n) => WExpr::Net(self.net(n)?),
            VExpr::Const(c) => WExpr::Const(c.clone()),
            VExpr::Index(m, a) => {
                WExpr::MemRead { mem: self.mem(m)?, addr: Box::new(self.wide(a)?) }
            }
            VExpr::Slice(n, hi, lo) => WExpr::Slice { net: self.net(n)?, hi: *hi, lo: *lo },
            VExpr::Unary(op, a) => WExpr::Un { op: *op, a: Box::new(self.wide(a)?) },
            VExpr::Binary(op, a, b) => {
                WExpr::Bin { op: *op, a: Box::new(self.wide(a)?), b: Box::new(self.wide(b)?) }
            }
            VExpr::Cond(c, t, f) => WExpr::Cond {
                c: Box::new(self.wide(c)?),
                t: Box::new(self.wide(t)?),
                f: Box::new(self.wide(f)?),
            },
            VExpr::Concat(parts) => {
                WExpr::Concat(parts.iter().map(|p| self.wide(p)).collect::<Result<Vec<_>, _>>()?)
            }
            VExpr::Zext(a, add) => WExpr::Zext { a: Box::new(self.wide(a)?), add: *add },
            VExpr::Sext(a, _, to) => WExpr::Sext { a: Box::new(self.wide(a)?), to: *to },
            VExpr::Trunc(a, w) => WExpr::Trunc { a: Box::new(self.wide(a)?), w: *w },
        })
    }

    fn compile_stmts(&self, stmts: &[VStmt]) -> Result<Vec<CStmt>, VlogError> {
        stmts.iter().map(|st| self.compile_stmt(st)).collect()
    }

    fn compile_stmt(&self, st: &VStmt) -> Result<CStmt, VlogError> {
        Ok(match st {
            VStmt::NonBlocking { lhs, rhs } => {
                let rhs = self.compile(rhs)?;
                match lhs {
                    LValue::Net(n) => {
                        let id = self.net(n)?;
                        let w = self.arena.widths[id];
                        CStmt::NetAssign { net: id, hi: w - 1, lo: 0, rhs }
                    }
                    LValue::Slice(n, hi, lo) => {
                        CStmt::NetAssign { net: self.net(n)?, hi: *hi, lo: *lo, rhs }
                    }
                    LValue::Index(m, a) => {
                        CStmt::MemAssign { mem: self.mem(m)?, addr: self.compile(a)?, rhs }
                    }
                }
            }
            VStmt::If { cond, then_body, else_body } => CStmt::If {
                cond: self.compile(cond)?,
                then_body: self.compile_stmts(then_body)?,
                else_body: self.compile_stmts(else_body)?,
            },
        })
    }

    fn net(&self, name: &str) -> Result<usize, VlogError> {
        self.netlist
            .net_id(name)
            .map(|id| id.0)
            .ok_or_else(|| VlogError::new(format!("net `{name}` is not declared")))
    }

    fn mem(&self, name: &str) -> Result<usize, VlogError> {
        self.netlist
            .mem_id(name)
            .map(|id| id.0)
            .ok_or_else(|| VlogError::new(format!("memory `{name}` is not declared")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{VBinOp, VExpr, VModule, VStmt, VUnOp};

    fn counter(width: u32) -> VModule {
        let mut m = VModule::new("counter");
        m.add_reg("count", width);
        m.add_output("out", width);
        m.assign(LValue::net("out"), VExpr::net("count"));
        m.always_ff(vec![VStmt::NonBlocking {
            lhs: LValue::net("count"),
            rhs: VExpr::binary(VBinOp::Add, VExpr::net("count"), VExpr::const_u64(1, width)),
        }]);
        m
    }

    #[test]
    fn counter_counts_and_wraps() {
        let mut sim = LevelizedSim::elaborate(&counter(3)).expect("elaborates");
        sim.clock(5).expect("clocks");
        assert_eq!(sim.peek("count").expect("net").to_u64_lossy(), 5);
        assert_eq!(sim.peek("out").expect("net").to_u64_lossy(), 5);
        sim.clock(5).expect("clocks");
        assert_eq!(sim.peek("count").expect("net").to_u64_lossy(), 2, "3-bit wrap");
        assert_eq!(sim.cycles(), 10);
        assert!(sim.node_evals() > 0);
    }

    #[test]
    fn wide_counter_takes_bitvector_lane() {
        let mut sim = LevelizedSim::elaborate(&counter(96)).expect("elaborates");
        sim.clock(3).expect("clocks");
        assert_eq!(sim.peek("out").expect("net").to_u64_lossy(), 3);
        assert_eq!(sim.peek("out").expect("net").width(), 96);
    }

    #[test]
    fn poke_of_driven_net_is_a_typed_error() {
        let mut m = VModule::new("m");
        m.add_input("a", 4);
        m.add_wire("x", 4);
        m.assign(LValue::net("x"), VExpr::unary(VUnOp::Not, VExpr::net("a")));
        let mut sim = LevelizedSim::elaborate(&m).expect("elaborates");
        let err = sim.poke("x", BitVector::from_u64(1, 4)).expect_err("driven");
        assert!(err.message().contains("continuous driver"), "{}", err.message());
    }

    #[test]
    fn quiescent_partition_is_skipped() {
        // Two cones: one fed by a running counter, one by a register
        // that never changes. The static cone must be skipped at every
        // edge after the first.
        let mut m = counter(4);
        m.add_reg("frozen", 4);
        m.add_wire("static_inv", 4);
        m.assign(LValue::net("static_inv"), VExpr::unary(VUnOp::Not, VExpr::net("frozen")));
        let mut sim = LevelizedSim::elaborate(&m).expect("elaborates");
        sim.clock(10).expect("clocks");
        let s = sim.stats();
        assert_eq!(s.partitions, 2);
        assert_eq!(s.partitions_skipped, 10, "static cone skipped every edge");
        assert!(s.skip_rate() > 0.0);
        assert_eq!(sim.peek("static_inv").expect("net").to_u64_lossy(), 0xF);
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let sim = LevelizedSim::elaborate(&counter(4)).expect("elaborates");
        assert!(sim.peek("ghost").is_err());
        assert!(sim.peek_memory("ghost", 0).is_err());
        let mut sim = sim;
        assert!(sim.poke("ghost", BitVector::from_u64(0, 4)).is_err());
        assert!(sim.poke_memory("ghost", 0, BitVector::from_u64(0, 4)).is_err());
    }

    #[test]
    fn memory_write_and_read() {
        let mut m = VModule::new("m");
        m.add_memory("ram", 8, 16);
        m.add_input("we", 1);
        m.add_input("waddr", 4);
        m.add_input("wdata", 8);
        m.add_input("raddr", 4);
        m.add_wire("q", 8);
        m.assign(LValue::net("q"), VExpr::Index("ram".into(), Box::new(VExpr::net("raddr"))));
        m.always_ff(vec![VStmt::If {
            cond: VExpr::net("we"),
            then_body: vec![VStmt::NonBlocking {
                lhs: LValue::Index("ram".into(), VExpr::net("waddr")),
                rhs: VExpr::net("wdata"),
            }],
            else_body: vec![],
        }]);
        let mut sim = LevelizedSim::elaborate(&m).expect("elaborates");
        sim.poke("we", BitVector::from_u64(1, 1)).expect("pokes");
        sim.poke("waddr", BitVector::from_u64(5, 4)).expect("pokes");
        sim.poke("wdata", BitVector::from_u64(0xAB, 8)).expect("pokes");
        sim.clock(1).expect("clocks");
        assert_eq!(sim.peek_memory("ram", 5).expect("mem").to_u64_lossy(), 0xAB);
        sim.poke("raddr", BitVector::from_u64(5, 4)).expect("pokes");
        assert_eq!(sim.peek("q").expect("net").to_u64_lossy(), 0xAB);
    }

    #[test]
    fn nonblocking_reads_old_values() {
        let mut m = VModule::new("m");
        m.add_reg("a", 4);
        m.add_reg("b", 4);
        m.always_ff(vec![
            VStmt::NonBlocking { lhs: LValue::net("a"), rhs: VExpr::net("b") },
            VStmt::NonBlocking { lhs: LValue::net("b"), rhs: VExpr::net("a") },
        ]);
        let mut sim = LevelizedSim::elaborate(&m).expect("elaborates");
        sim.poke("a", BitVector::from_u64(1, 4)).expect("pokes");
        sim.poke("b", BitVector::from_u64(2, 4)).expect("pokes");
        sim.clock(1).expect("clocks");
        assert_eq!(sim.peek("a").expect("net").to_u64_lossy(), 2);
        assert_eq!(sim.peek("b").expect("net").to_u64_lossy(), 1);
    }

    #[test]
    fn combinational_loop_rejected_at_compile_time() {
        let mut m = VModule::new("m");
        m.add_wire("p", 1);
        m.add_wire("q", 1);
        m.assign(LValue::net("p"), VExpr::unary(VUnOp::Not, VExpr::net("q")));
        m.assign(LValue::net("q"), VExpr::net("p"));
        let err = LevelizedSim::elaborate(&m).expect_err("ring oscillator");
        assert!(err.message().contains("combinational loop"), "{}", err.message());
    }
}
