//! The synthesizable-Verilog subset HGEN emits.
//!
//! One flat module; wires and regs (optionally with a depth, making a
//! memory); continuous assignments; and a single `always @(posedge
//! clk)` block of non-blocking assignments. This is the standard
//! "synthesizable RTL" style every silicon compiler accepts.

use bitv::BitVector;
use std::fmt::Write as _;

/// Binary operators in the Verilog subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (unsigned)
    Div,
    /// `%` (unsigned)
    Mod,
    /// `/` on `$signed` operands
    SDiv,
    /// `%` on `$signed` operands
    SRem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>` on `$signed` operand
    AShr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (unsigned)
    Lt,
    /// `<=` (unsigned)
    Le,
    /// `<` on `$signed` operands
    SLt,
    /// `<=` on `$signed` operands
    SLe,
}

impl VBinOp {
    /// The Verilog operator text.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            Self::Add => "+",
            Self::Sub => "-",
            Self::Mul => "*",
            Self::Div | Self::SDiv => "/",
            Self::Mod | Self::SRem => "%",
            Self::And => "&",
            Self::Or => "|",
            Self::Xor => "^",
            Self::Shl => "<<",
            Self::Shr => ">>",
            Self::AShr => ">>>",
            Self::Eq => "==",
            Self::Ne => "!=",
            Self::Lt | Self::SLt => "<",
            Self::Le | Self::SLe => "<=",
        }
    }

    /// Whether the operator compares (1-bit result).
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(self, Self::Eq | Self::Ne | Self::Lt | Self::Le | Self::SLt | Self::SLe)
    }

    /// Whether operands are interpreted as signed.
    #[must_use]
    pub fn is_signed(self) -> bool {
        matches!(self, Self::AShr | Self::SLt | Self::SLe | Self::SDiv | Self::SRem)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VUnOp {
    /// `~`
    Not,
    /// `-`
    Neg,
    /// `|` reduction
    RedOr,
    /// `!`
    LNot,
}

/// A Verilog expression.
#[derive(Debug, Clone, PartialEq)]
pub enum VExpr {
    /// A named net.
    Net(String),
    /// A sized constant.
    Const(BitVector),
    /// A memory read `mem[addr]`.
    Index(String, Box<VExpr>),
    /// A bit slice `net[hi:lo]`.
    Slice(String, u32, u32),
    /// Unary operation.
    Unary(VUnOp, Box<VExpr>),
    /// Binary operation.
    Binary(VBinOp, Box<VExpr>, Box<VExpr>),
    /// `c ? t : f`.
    Cond(Box<VExpr>, Box<VExpr>, Box<VExpr>),
    /// `{a, b, ...}` — first part most significant.
    Concat(Vec<VExpr>),
    /// Explicit zero-extension to a width (emitted as a concat with a
    /// zero constant; kept as a node so widths are explicit).
    Zext(Box<VExpr>, u32),
    /// Explicit sign-extension to a width (emitted with replication).
    Sext(Box<VExpr>, u32, u32),
    /// Truncation to the low bits (emitted as a part-select through a
    /// generated intermediate when needed).
    Trunc(Box<VExpr>, u32),
}

impl VExpr {
    /// A net reference.
    #[must_use]
    pub fn net(name: impl Into<String>) -> Self {
        Self::Net(name.into())
    }

    /// A sized constant from a `u64`.
    #[must_use]
    pub fn const_u64(v: u64, width: u32) -> Self {
        Self::Const(BitVector::from_u64(v, width))
    }

    /// A binary operation.
    #[must_use]
    pub fn binary(op: VBinOp, a: VExpr, b: VExpr) -> Self {
        Self::Binary(op, Box::new(a), Box::new(b))
    }

    /// A unary operation.
    #[must_use]
    pub fn unary(op: VUnOp, a: VExpr) -> Self {
        Self::Unary(op, Box::new(a))
    }

    /// A conditional.
    #[must_use]
    pub fn cond(c: VExpr, t: VExpr, f: VExpr) -> Self {
        Self::Cond(Box::new(c), Box::new(t), Box::new(f))
    }

    fn emit(&self, out: &mut String) {
        match self {
            Self::Net(n) => out.push_str(n),
            Self::Const(c) => {
                let _ = write!(out, "{}'h{c:x}", c.width());
            }
            Self::Index(m, a) => {
                out.push_str(m);
                out.push('[');
                a.emit(out);
                out.push(']');
            }
            Self::Slice(n, hi, lo) => {
                if hi == lo {
                    let _ = write!(out, "{n}[{hi}]");
                } else {
                    let _ = write!(out, "{n}[{hi}:{lo}]");
                }
            }
            Self::Unary(op, a) => {
                let sym = match op {
                    VUnOp::Not => "~",
                    VUnOp::Neg => "-",
                    VUnOp::RedOr => "|",
                    VUnOp::LNot => "!",
                };
                out.push_str(sym);
                out.push('(');
                a.emit(out);
                out.push(')');
            }
            Self::Binary(op, a, b) => {
                out.push('(');
                if op.is_signed() {
                    out.push_str("$signed(");
                    a.emit(out);
                    out.push(')');
                } else {
                    a.emit(out);
                }
                let _ = write!(out, " {} ", op.symbol());
                if op.is_signed() && !matches!(op, VBinOp::AShr) {
                    out.push_str("$signed(");
                    b.emit(out);
                    out.push(')');
                } else {
                    b.emit(out);
                }
                out.push(')');
            }
            Self::Cond(c, t, f) => {
                out.push('(');
                c.emit(out);
                out.push_str(" ? ");
                t.emit(out);
                out.push_str(" : ");
                f.emit(out);
                out.push(')');
            }
            Self::Concat(parts) => {
                out.push('{');
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    p.emit(out);
                }
                out.push('}');
            }
            Self::Zext(a, w) => {
                let _ = write!(out, "{{{}'h0, ", w);
                a.emit(out);
                out.push('}');
            }
            Self::Sext(a, from, to) => {
                let _ = write!(out, "{{{{{}{{", to - from);
                a.emit(out);
                let _ = write!(out, "[{}]}}}}, ", from - 1);
                a.emit(out);
                out.push('}');
            }
            Self::Trunc(a, w) => {
                // Verilog truncates implicitly on assignment; keep the
                // width visible with a comment-free part-select form
                // when the operand is a net, else rely on implicit
                // truncation.
                if let Self::Net(n) = a.as_ref() {
                    let _ = write!(out, "{n}[{}:0]", w - 1);
                } else {
                    a.emit(out);
                }
            }
        }
    }
}

/// An assignment destination.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A whole net.
    Net(String),
    /// Bits `hi..=lo` of a net.
    Slice(String, u32, u32),
    /// A memory cell.
    Index(String, VExpr),
}

impl LValue {
    /// A whole-net destination.
    #[must_use]
    pub fn net(name: impl Into<String>) -> Self {
        Self::Net(name.into())
    }

    /// The destination net/memory name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Self::Net(n) | Self::Slice(n, _, _) | Self::Index(n, _) => n,
        }
    }

    fn emit(&self, out: &mut String) {
        match self {
            Self::Net(n) => out.push_str(n),
            Self::Slice(n, hi, lo) => {
                if hi == lo {
                    let _ = write!(out, "{n}[{hi}]");
                } else {
                    let _ = write!(out, "{n}[{hi}:{lo}]");
                }
            }
            Self::Index(n, a) => {
                out.push_str(n);
                out.push('[');
                a.emit(out);
                out.push(']');
            }
        }
    }
}

/// A statement inside the clocked `always` block.
#[derive(Debug, Clone, PartialEq)]
pub enum VStmt {
    /// `lhs <= rhs;`
    NonBlocking {
        /// Destination.
        lhs: LValue,
        /// Source.
        rhs: VExpr,
    },
    /// `if (c) ... else ...`
    If {
        /// Condition (any width; true iff non-zero).
        cond: VExpr,
        /// Taken branch.
        then_body: Vec<VStmt>,
        /// Else branch.
        else_body: Vec<VStmt>,
    },
}

/// Direction of a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// A module port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Width in bits.
    pub width: u32,
}

/// A net declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetDecl {
    /// Name.
    pub name: String,
    /// Whether it holds state (`reg`) or is combinational (`wire`).
    pub is_reg: bool,
    /// Width in bits.
    pub width: u32,
    /// Number of cells; `Some` makes this a memory.
    pub depth: Option<u64>,
}

/// A synthesizable module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VModule {
    /// Module name.
    pub name: String,
    /// Ports (the implicit `clk` input is added at emission).
    pub ports: Vec<Port>,
    /// Internal nets.
    pub nets: Vec<NetDecl>,
    /// Continuous assignments, in declaration order.
    pub assigns: Vec<(LValue, VExpr)>,
    /// The clocked block's statements.
    pub ff: Vec<VStmt>,
}

impl VModule {
    /// Creates an empty module.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), ..Self::default() }
    }

    /// Adds an input port.
    pub fn add_input(&mut self, name: impl Into<String>, width: u32) {
        self.ports.push(Port { name: name.into(), dir: PortDir::Input, width });
    }

    /// Adds an output port (driven by a continuous assign).
    pub fn add_output(&mut self, name: impl Into<String>, width: u32) {
        self.ports.push(Port { name: name.into(), dir: PortDir::Output, width });
    }

    /// Adds an internal wire.
    pub fn add_wire(&mut self, name: impl Into<String>, width: u32) {
        self.nets.push(NetDecl { name: name.into(), is_reg: false, width, depth: None });
    }

    /// Adds a state register.
    pub fn add_reg(&mut self, name: impl Into<String>, width: u32) {
        self.nets.push(NetDecl { name: name.into(), is_reg: true, width, depth: None });
    }

    /// Adds a memory (`reg [w-1:0] name [0:depth-1]`).
    pub fn add_memory(&mut self, name: impl Into<String>, width: u32, depth: u64) {
        self.nets.push(NetDecl { name: name.into(), is_reg: true, width, depth: Some(depth) });
    }

    /// Adds a continuous assignment.
    pub fn assign(&mut self, lhs: LValue, rhs: VExpr) {
        self.assigns.push((lhs, rhs));
    }

    /// Appends statements to the clocked block.
    pub fn always_ff(&mut self, stmts: Vec<VStmt>) {
        self.ff.extend(stmts);
    }

    /// Looks up a declared net or port width.
    #[must_use]
    pub fn net_width(&self, name: &str) -> Option<u32> {
        self.nets
            .iter()
            .find(|n| n.name == name)
            .map(|n| n.width)
            .or_else(|| self.ports.iter().find(|p| p.name == name).map(|p| p.width))
    }

    /// Emits the module as synthesizable Verilog text.
    #[must_use]
    pub fn to_verilog(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "// Generated by HGEN — synthesizable model of `{}`", self.name);
        let mut port_names = vec!["clk".to_owned()];
        port_names.extend(self.ports.iter().map(|p| p.name.clone()));
        let _ = writeln!(s, "module {} ({});", self.name, port_names.join(", "));
        let _ = writeln!(s, "  input clk;");
        for p in &self.ports {
            let dir = match p.dir {
                PortDir::Input => "input",
                PortDir::Output => "output",
            };
            if p.width == 1 {
                let _ = writeln!(s, "  {dir} {};", p.name);
            } else {
                let _ = writeln!(s, "  {dir} [{}:0] {};", p.width - 1, p.name);
            }
        }
        for n in &self.nets {
            let kind = if n.is_reg { "reg" } else { "wire" };
            let range = if n.width == 1 { String::new() } else { format!(" [{}:0]", n.width - 1) };
            match n.depth {
                Some(d) => {
                    let _ = writeln!(s, "  {kind}{range} {} [0:{}];", n.name, d - 1);
                }
                None => {
                    let _ = writeln!(s, "  {kind}{range} {};", n.name);
                }
            }
        }
        s.push('\n');
        for (lhs, rhs) in &self.assigns {
            let mut line = String::from("  assign ");
            lhs.emit(&mut line);
            line.push_str(" = ");
            rhs.emit(&mut line);
            line.push(';');
            let _ = writeln!(s, "{line}");
        }
        if !self.ff.is_empty() {
            s.push('\n');
            let _ = writeln!(s, "  always @(posedge clk) begin");
            for st in &self.ff {
                emit_stmt(st, 2, &mut s);
            }
            let _ = writeln!(s, "  end");
        }
        let _ = writeln!(s, "endmodule");
        s
    }

    /// Number of emitted Verilog source lines (the Table 2 metric).
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.to_verilog().lines().count()
    }
}

fn emit_stmt(st: &VStmt, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match st {
        VStmt::NonBlocking { lhs, rhs } => {
            let mut line = pad;
            lhs.emit(&mut line);
            line.push_str(" <= ");
            rhs.emit(&mut line);
            line.push(';');
            let _ = writeln!(out, "{line}");
        }
        VStmt::If { cond, then_body, else_body } => {
            let mut line = format!("{pad}if (");
            cond.emit(&mut line);
            line.push_str(") begin");
            let _ = writeln!(out, "{line}");
            for s in then_body {
                emit_stmt(s, depth + 1, out);
            }
            if else_body.is_empty() {
                let _ = writeln!(out, "{pad}end");
            } else {
                let _ = writeln!(out, "{pad}end else begin");
                for s in else_body {
                    emit_stmt(s, depth + 1, out);
                }
                let _ = writeln!(out, "{pad}end");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> VModule {
        let mut m = VModule::new("counter");
        m.add_reg("count", 4);
        m.add_output("out", 4);
        m.assign(LValue::net("out"), VExpr::net("count"));
        m.always_ff(vec![VStmt::NonBlocking {
            lhs: LValue::net("count"),
            rhs: VExpr::binary(VBinOp::Add, VExpr::net("count"), VExpr::const_u64(1, 4)),
        }]);
        m
    }

    #[test]
    fn emits_module_skeleton() {
        let text = counter().to_verilog();
        assert!(text.contains("module counter (clk, out);"));
        assert!(text.contains("input clk;"));
        assert!(text.contains("output [3:0] out;"));
        assert!(text.contains("reg [3:0] count;"));
        assert!(text.contains("assign out = count;"));
        assert!(text.contains("always @(posedge clk) begin"));
        assert!(text.contains("count <= (count + 4'h1);"));
        assert!(text.contains("endmodule"));
    }

    #[test]
    fn memory_declaration() {
        let mut m = VModule::new("m");
        m.add_memory("ram", 16, 256);
        assert!(m.to_verilog().contains("reg [15:0] ram [0:255];"));
    }

    #[test]
    fn signed_comparison_emits_dollar_signed() {
        let mut m = VModule::new("m");
        m.add_wire("a", 8);
        m.add_wire("b", 8);
        m.add_wire("lt", 1);
        m.assign(LValue::net("lt"), VExpr::binary(VBinOp::SLt, VExpr::net("a"), VExpr::net("b")));
        assert!(m.to_verilog().contains("($signed(a) < $signed(b))"));
    }

    #[test]
    fn if_else_emission() {
        let mut m = VModule::new("m");
        m.add_reg("r", 1);
        m.add_input("c", 1);
        m.always_ff(vec![VStmt::If {
            cond: VExpr::net("c"),
            then_body: vec![VStmt::NonBlocking {
                lhs: LValue::net("r"),
                rhs: VExpr::const_u64(1, 1),
            }],
            else_body: vec![VStmt::NonBlocking {
                lhs: LValue::net("r"),
                rhs: VExpr::const_u64(0, 1),
            }],
        }]);
        let text = m.to_verilog();
        assert!(text.contains("if (c) begin"));
        assert!(text.contains("end else begin"));
    }

    #[test]
    fn line_count_counts_lines() {
        let m = counter();
        assert_eq!(m.line_count(), m.to_verilog().lines().count());
        assert!(m.line_count() > 5);
    }

    #[test]
    fn slice_and_index_emission() {
        let mut m = VModule::new("m");
        m.add_wire("w", 8);
        m.add_memory("ram", 8, 16);
        m.add_wire("bit", 1);
        m.assign(
            LValue::Slice("w".into(), 3, 0),
            VExpr::Index("ram".into(), Box::new(VExpr::const_u64(2, 4))),
        );
        m.assign(LValue::net("bit"), VExpr::Slice("w".into(), 7, 7));
        let text = m.to_verilog();
        assert!(text.contains("assign w[3:0] = ram[4'h2];"));
        assert!(text.contains("assign bit = w[7];"));
    }

    #[test]
    fn net_width_lookup() {
        let m = counter();
        assert_eq!(m.net_width("count"), Some(4));
        assert_eq!(m.net_width("out"), Some(4));
        assert_eq!(m.net_width("missing"), None);
    }
}
