//! Event-driven simulation of an elaborated netlist.
//!
//! This is the suite's stand-in for Cadence Verilog-XL: a two-phase
//! clocked, event-driven simulator. Within a cycle, combinational
//! nodes are re-evaluated from a worklist seeded by changed nets
//! (fan-out driven, like any event-driven HDL simulator); at each
//! rising clock edge the non-blocking updates of the `always` block are
//! computed against settled values and applied atomically.
//!
//! The per-cycle cost is proportional to the number of *events*
//! (node re-evaluations), which is what makes simulating a hardware
//! model orders of magnitude slower than an instruction-level
//! simulator — the effect Table 1 of the paper quantifies.

use crate::ast::{LValue, VModule, VStmt};
use crate::netlist::{eval_expr, MemId, NetId, Netlist};
use crate::vcd::Vcd;
use crate::VlogError;
use bitv::BitVector;
use std::collections::VecDeque;
use std::io::Write;

/// An event-driven simulator over an elaborated netlist.
pub struct NetlistSim {
    netlist: Netlist,
    values: Vec<BitVector>,
    mems: Vec<Vec<BitVector>>,
    /// Total combinational node evaluations performed.
    events: u64,
    /// Total rising clock edges applied.
    cycles: u64,
    vcd: Option<Vcd>,
}

impl std::fmt::Debug for NetlistSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetlistSim")
            .field("nets", &self.netlist.nets.len())
            .field("cycles", &self.cycles)
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

impl Clone for NetlistSim {
    /// Clones the simulator state; an attached VCD sink is not cloned
    /// (the copy starts without waveform dumping).
    fn clone(&self) -> Self {
        Self {
            netlist: self.netlist.clone(),
            values: self.values.clone(),
            mems: self.mems.clone(),
            events: self.events,
            cycles: self.cycles,
            vcd: None,
        }
    }
}

impl NetlistSim {
    /// Elaborates `module` and initialises all state to zero.
    ///
    /// # Errors
    ///
    /// Propagates elaboration errors; also fails if the initial
    /// combinational settle does not converge (a combinational loop).
    pub fn elaborate(module: &VModule) -> Result<Self, VlogError> {
        let netlist = Netlist::elaborate(module)?;
        let values = netlist.nets.iter().map(|n| BitVector::zero(n.width)).collect();
        let mems =
            netlist.mems.iter().map(|m| vec![BitVector::zero(m.width); m.depth as usize]).collect();
        let mut sim = Self { netlist, values, mems, events: 0, cycles: 0, vcd: None };
        sim.settle_all()?;
        Ok(sim)
    }

    /// The elaborated netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Current value of a net.
    ///
    /// # Errors
    ///
    /// Returns a [`VlogError`] if the net does not exist.
    pub fn peek(&self, name: &str) -> Result<&BitVector, VlogError> {
        let id = self
            .netlist
            .net_id(name)
            .ok_or_else(|| VlogError::new(format!("net `{name}` does not exist")))?;
        Ok(&self.values[id.0])
    }

    /// Current value of one memory cell; the address wraps at the
    /// depth.
    ///
    /// # Errors
    ///
    /// Returns a [`VlogError`] if the memory does not exist.
    pub fn peek_memory(&self, name: &str, addr: u64) -> Result<&BitVector, VlogError> {
        let id = self
            .netlist
            .mem_id(name)
            .ok_or_else(|| VlogError::new(format!("memory `{name}` does not exist")))?;
        let depth = self.netlist.mems[id.0].depth;
        Ok(&self.mems[id.0][(addr % depth) as usize])
    }

    /// Forces a net value (module inputs, or registers for test setup)
    /// and propagates through the combinational logic.
    ///
    /// # Errors
    ///
    /// Returns a [`VlogError`] if the net does not exist or the width
    /// differs; also fails on a non-converging combinational loop.
    pub fn poke(&mut self, name: &str, value: BitVector) -> Result<(), VlogError> {
        let id = self
            .netlist
            .net_id(name)
            .ok_or_else(|| VlogError::new(format!("net `{name}` does not exist")))?;
        let w = self.netlist.nets[id.0].width;
        if value.width() != w {
            return Err(VlogError::new(format!(
                "poke of `{name}`: value is {} bits, net is {w}",
                value.width()
            )));
        }
        if self.values[id.0] != value {
            self.values[id.0] = value;
            self.settle_from(&[id], &[])?;
        }
        Ok(())
    }

    /// Writes one memory cell directly (program loading / test setup)
    /// and propagates to combinational readers.
    ///
    /// # Errors
    ///
    /// Returns a [`VlogError`] if the memory does not exist or the
    /// width differs; also fails on a non-converging combinational
    /// loop.
    pub fn poke_memory(
        &mut self,
        name: &str,
        addr: u64,
        value: BitVector,
    ) -> Result<(), VlogError> {
        let id = self
            .netlist
            .mem_id(name)
            .ok_or_else(|| VlogError::new(format!("memory `{name}` does not exist")))?;
        let m = &self.netlist.mems[id.0];
        if value.width() != m.width {
            return Err(VlogError::new(format!(
                "poke of `{name}`: value is {} bits, cells are {}",
                value.width(),
                m.width
            )));
        }
        let i = (addr % m.depth) as usize;
        if self.mems[id.0][i] != value {
            self.mems[id.0][i] = value;
            self.settle_from(&[], &[id])?;
        }
        Ok(())
    }

    /// Applies `n` rising clock edges.
    ///
    /// # Errors
    ///
    /// Fails on a non-converging combinational loop.
    pub fn clock(&mut self, n: u64) -> Result<(), VlogError> {
        for _ in 0..n {
            self.edge()?;
        }
        Ok(())
    }

    /// Total combinational evaluations performed so far — the event
    /// count that dominates simulation cost.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total rising edges applied.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Starts dumping a value-change dump (VCD) of every scalar net to
    /// `sink`. The header and initial values are written immediately;
    /// each subsequent clock edge appends the nets that changed.
    /// Memories are not traced (VCD has no array construct).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn start_vcd(&mut self, sink: Box<dyn Write + Send + Sync>) -> std::io::Result<()> {
        self.vcd = Some(Vcd::start(sink, &self.netlist.nets, self.values.clone())?);
        Ok(())
    }

    /// Stops VCD dumping and returns the sink.
    pub fn stop_vcd(&mut self) -> Option<Box<dyn Write + Send + Sync>> {
        self.vcd.take().map(Vcd::into_sink)
    }

    fn dump_vcd_changes(&mut self) {
        if let Some(vcd) = &mut self.vcd {
            let values = &self.values;
            vcd.dump_changes(self.cycles, |i| values[i].clone());
        }
    }

    fn edge(&mut self) -> Result<(), VlogError> {
        // Compute all non-blocking updates against settled values.
        let mut net_updates: Vec<(NetId, u32, u32, BitVector)> = Vec::new();
        let mut mem_updates: Vec<(MemId, u64, BitVector)> = Vec::new();
        let stmts = self.netlist.ff.clone();
        self.exec_stmts(&stmts, &mut net_updates, &mut mem_updates);

        // Apply atomically (last assignment to a cell wins — Verilog
        // non-blocking semantics).
        let mut changed_nets = Vec::new();
        let mut changed_mems = Vec::new();
        for (id, hi, lo, v) in net_updates {
            let old = &self.values[id.0];
            let new = if lo == 0 && hi == old.width() - 1 { v } else { old.with_slice(hi, lo, &v) };
            if self.values[id.0] != new {
                self.values[id.0] = new;
                changed_nets.push(id);
            }
        }
        for (id, addr, v) in mem_updates {
            let depth = self.netlist.mems[id.0].depth;
            let i = (addr % depth) as usize;
            if self.mems[id.0][i] != v {
                self.mems[id.0][i] = v;
                changed_mems.push(id);
            }
        }
        self.cycles += 1;
        self.settle_from(&changed_nets, &changed_mems)?;
        self.dump_vcd_changes();
        Ok(())
    }

    fn exec_stmts(
        &self,
        stmts: &[VStmt],
        net_updates: &mut Vec<(NetId, u32, u32, BitVector)>,
        mem_updates: &mut Vec<(MemId, u64, BitVector)>,
    ) {
        for st in stmts {
            match st {
                VStmt::NonBlocking { lhs, rhs } => {
                    let v = eval_expr(rhs, &self.netlist, &self.values, &self.mems);
                    match lhs {
                        LValue::Net(n) => {
                            let id = self.netlist.net_id(n).expect("validated");
                            let w = self.netlist.nets[id.0].width;
                            net_updates.push((id, w - 1, 0, v));
                        }
                        LValue::Slice(n, hi, lo) => {
                            let id = self.netlist.net_id(n).expect("validated");
                            net_updates.push((id, *hi, *lo, v));
                        }
                        LValue::Index(m, a) => {
                            let id = self.netlist.mem_id(m).expect("validated");
                            let addr = eval_expr(a, &self.netlist, &self.values, &self.mems)
                                .to_u64_lossy();
                            mem_updates.push((id, addr, v));
                        }
                    }
                }
                VStmt::If { cond, then_body, else_body } => {
                    let c = eval_expr(cond, &self.netlist, &self.values, &self.mems);
                    let body = if c.is_zero() { else_body } else { then_body };
                    self.exec_stmts(body, net_updates, mem_updates);
                }
            }
        }
    }

    fn settle_all(&mut self) -> Result<(), VlogError> {
        let all: Vec<usize> = (0..self.netlist.comb.len()).collect();
        self.run_worklist(all.into())
    }

    fn settle_from(&mut self, nets: &[NetId], mems: &[MemId]) -> Result<(), VlogError> {
        let mut work: VecDeque<usize> = VecDeque::new();
        for n in nets {
            work.extend(&self.netlist.fanout[n.0]);
        }
        for m in mems {
            work.extend(&self.netlist.mem_fanout[m.0]);
        }
        self.run_worklist(work)
    }

    fn run_worklist(&mut self, mut work: VecDeque<usize>) -> Result<(), VlogError> {
        // Convergence budget: generous multiple of design size.
        let budget = 64 * (self.netlist.comb.len() as u64 + 4) * (work.len() as u64 + 4);
        let mut spent = 0u64;
        let mut queued: Vec<bool> = vec![false; self.netlist.comb.len()];
        for &i in &work {
            queued[i] = true;
        }
        while let Some(i) = work.pop_front() {
            queued[i] = false;
            spent += 1;
            self.events += 1;
            if spent > budget {
                return Err(VlogError::new(
                    "combinational logic did not converge (combinational loop?)",
                ));
            }
            let node = &self.netlist.comb[i];
            let v = eval_expr(&node.expr, &self.netlist, &self.values, &self.mems);
            let old = &self.values[node.target.0];
            let new = if node.lo == 0 && node.hi == old.width() - 1 {
                v
            } else {
                old.with_slice(node.hi, node.lo, &v)
            };
            if *old != new {
                self.values[node.target.0] = new;
                for &j in &self.netlist.fanout[node.target.0] {
                    if !queued[j] {
                        queued[j] = true;
                        work.push_back(j);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn counter(width: u32) -> VModule {
        let mut m = VModule::new("counter");
        m.add_reg("count", width);
        m.add_output("out", width);
        m.assign(LValue::net("out"), VExpr::net("count"));
        m.always_ff(vec![VStmt::NonBlocking {
            lhs: LValue::net("count"),
            rhs: VExpr::binary(VBinOp::Add, VExpr::net("count"), VExpr::const_u64(1, width)),
        }]);
        m
    }

    #[test]
    fn counter_counts_and_wraps() {
        let mut sim = NetlistSim::elaborate(&counter(3)).expect("elaborates");
        sim.clock(5).expect("clocks");
        assert_eq!(sim.peek("count").expect("net").to_u64_lossy(), 5);
        assert_eq!(sim.peek("out").expect("net").to_u64_lossy(), 5);
        sim.clock(5).expect("clocks");
        assert_eq!(sim.peek("count").expect("net").to_u64_lossy(), 2, "3-bit wrap");
        assert_eq!(sim.cycles(), 10);
        assert!(sim.events() > 0);
    }

    #[test]
    fn poke_input_propagates() {
        let mut m = VModule::new("m");
        m.add_input("a", 8);
        m.add_input("b", 8);
        m.add_wire("sum", 8);
        m.assign(LValue::net("sum"), VExpr::binary(VBinOp::Add, VExpr::net("a"), VExpr::net("b")));
        let mut sim = NetlistSim::elaborate(&m).expect("elaborates");
        sim.poke("a", BitVector::from_u64(30, 8)).expect("pokes");
        sim.poke("b", BitVector::from_u64(12, 8)).expect("pokes");
        assert_eq!(sim.peek("sum").expect("net").to_u64_lossy(), 42);
    }

    #[test]
    fn chained_combinational_propagation() {
        let mut m = VModule::new("m");
        m.add_input("a", 4);
        m.add_wire("x", 4);
        m.add_wire("y", 4);
        m.add_wire("z", 4);
        m.assign(
            LValue::net("x"),
            VExpr::binary(VBinOp::Add, VExpr::net("a"), VExpr::const_u64(1, 4)),
        );
        m.assign(
            LValue::net("y"),
            VExpr::binary(VBinOp::Shl, VExpr::net("x"), VExpr::const_u64(1, 4)),
        );
        m.assign(LValue::net("z"), VExpr::unary(VUnOp::Not, VExpr::net("y")));
        let mut sim = NetlistSim::elaborate(&m).expect("elaborates");
        sim.poke("a", BitVector::from_u64(2, 4)).expect("pokes");
        assert_eq!(sim.peek("z").expect("net").to_u64_lossy(), 0b1001);
    }

    #[test]
    fn memory_write_and_read() {
        let mut m = VModule::new("m");
        m.add_memory("ram", 8, 16);
        m.add_input("we", 1);
        m.add_input("waddr", 4);
        m.add_input("wdata", 8);
        m.add_input("raddr", 4);
        m.add_wire("q", 8);
        m.assign(LValue::net("q"), VExpr::Index("ram".into(), Box::new(VExpr::net("raddr"))));
        m.always_ff(vec![VStmt::If {
            cond: VExpr::net("we"),
            then_body: vec![VStmt::NonBlocking {
                lhs: LValue::Index("ram".into(), VExpr::net("waddr")),
                rhs: VExpr::net("wdata"),
            }],
            else_body: vec![],
        }]);
        let mut sim = NetlistSim::elaborate(&m).expect("elaborates");
        sim.poke("we", BitVector::from_u64(1, 1)).expect("pokes");
        sim.poke("waddr", BitVector::from_u64(5, 4)).expect("pokes");
        sim.poke("wdata", BitVector::from_u64(0xAB, 8)).expect("pokes");
        sim.clock(1).expect("clocks");
        assert_eq!(sim.peek_memory("ram", 5).expect("mem").to_u64_lossy(), 0xAB);
        sim.poke("raddr", BitVector::from_u64(5, 4)).expect("pokes");
        assert_eq!(sim.peek("q").expect("net").to_u64_lossy(), 0xAB);
    }

    #[test]
    fn nonblocking_reads_old_values() {
        // Classic swap: a <= b; b <= a; must exchange, not duplicate.
        let mut m = VModule::new("m");
        m.add_reg("a", 4);
        m.add_reg("b", 4);
        m.always_ff(vec![
            VStmt::NonBlocking { lhs: LValue::net("a"), rhs: VExpr::net("b") },
            VStmt::NonBlocking { lhs: LValue::net("b"), rhs: VExpr::net("a") },
        ]);
        let mut sim = NetlistSim::elaborate(&m).expect("elaborates");
        sim.poke("a", BitVector::from_u64(1, 4)).expect("pokes");
        sim.poke("b", BitVector::from_u64(2, 4)).expect("pokes");
        sim.clock(1).expect("clocks");
        assert_eq!(sim.peek("a").expect("net").to_u64_lossy(), 2);
        assert_eq!(sim.peek("b").expect("net").to_u64_lossy(), 1);
    }

    #[test]
    fn combinational_loop_detected() {
        let mut m = VModule::new("m");
        m.add_wire("p", 1);
        m.add_wire("q", 1);
        m.assign(LValue::net("p"), VExpr::unary(VUnOp::Not, VExpr::net("q")));
        m.assign(LValue::net("q"), VExpr::net("p"));
        assert!(NetlistSim::elaborate(&m).is_err(), "ring oscillator never settles");
    }

    #[test]
    fn poke_memory_updates_readers() {
        let mut m = VModule::new("m");
        m.add_memory("rom", 8, 4);
        m.add_wire("q", 8);
        m.assign(LValue::net("q"), VExpr::Index("rom".into(), Box::new(VExpr::const_u64(1, 2))));
        let mut sim = NetlistSim::elaborate(&m).expect("elaborates");
        sim.poke_memory("rom", 1, BitVector::from_u64(7, 8)).expect("pokes");
        assert_eq!(sim.peek("q").expect("net").to_u64_lossy(), 7);
    }
}

#[cfg(test)]
mod vcd_tests {
    use super::*;
    use crate::ast::*;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct SharedSink(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("sink").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vcd_captures_counter_waveform() {
        let mut m = VModule::new("c");
        m.add_reg("count", 2);
        m.always_ff(vec![VStmt::NonBlocking {
            lhs: LValue::net("count"),
            rhs: VExpr::binary(VBinOp::Add, VExpr::net("count"), VExpr::const_u64(1, 2)),
        }]);
        let mut sim = NetlistSim::elaborate(&m).expect("elaborates");
        let sink = SharedSink::default();
        sim.start_vcd(Box::new(sink.clone())).expect("starts");
        sim.clock(3).expect("clocks");
        let text = String::from_utf8(sink.0.lock().expect("sink").clone()).expect("utf8");
        assert!(text.contains("$timescale 1ns $end"));
        assert!(text.contains("$var wire 2"));
        assert!(text.contains("count $end"));
        assert!(text.contains("$enddefinitions $end"));
        // Three edges -> three change records after the initial dump.
        assert!(text.contains("#1\nb01"), "{text}");
        assert!(text.contains("#2\nb10"), "{text}");
        assert!(text.contains("#3\nb11"), "{text}");
        assert!(sim.stop_vcd().is_some());
        sim.clock(1).expect("clocks without vcd");
    }

    #[test]
    fn clone_drops_vcd_sink() {
        let mut m = VModule::new("c");
        m.add_reg("r", 1);
        let mut sim = NetlistSim::elaborate(&m).expect("elaborates");
        sim.start_vcd(Box::new(SharedSink::default())).expect("starts");
        let copy = sim.clone();
        assert_eq!(copy.cycles(), 0);
    }
}
