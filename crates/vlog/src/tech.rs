//! Technology cost model and static timing — the Synopsys / LSI 10K
//! stand-in behind Table 2 of the paper.
//!
//! Every word-level operator in a module is mapped to gate-equivalent
//! area and a propagation delay drawn from an LSI-10K-flavoured
//! library (old 1.0 µm-class gate arrays: ~1 ns per gate level, ~3
//! grid cells per gate equivalent). Static timing then computes the
//! longest register-to-register path, giving the achievable cycle
//! length; area and a simple dynamic-power proxy complete the report.
//!
//! The constants are fixed, documented approximations — absolute
//! numbers will not match a real silicon compiler, but *relative*
//! comparisons (SPAM vs SPAM2, sharing on vs off) behave the way the
//! paper's flow does, which is what architecture exploration needs.

use crate::ast::{LValue, VBinOp, VExpr, VModule, VStmt, VUnOp};
use crate::netlist::Netlist;
use crate::VlogError;
use std::collections::HashMap;

/// Grid cells per gate equivalent (LSI 10K-style gate array).
const CELLS_PER_GE: f64 = 3.0;
/// Delay of one basic gate level, ns.
const GATE_NS: f64 = 1.0;
/// Flip-flop clock-to-Q delay, ns.
const CLK_Q_NS: f64 = 1.2;
/// Flip-flop setup time, ns.
const SETUP_NS: f64 = 0.8;
/// Gate equivalents per flip-flop bit.
const FF_GE: f64 = 6.0;
/// Gate equivalents per RAM bit (denser than random logic).
const RAM_BIT_GE: f64 = 1.2;
/// Dynamic power coefficient, mW per grid cell per GHz.
const POWER_MW_PER_CELL_GHZ: f64 = 0.006;

fn log2c(v: u64) -> f64 {
    (v.max(2) as f64).log2().ceil()
}

/// Synthesis-style report for one module.
#[derive(Debug, Clone, PartialEq)]
pub struct TechReport {
    /// Total die size estimate in grid cells.
    pub area_cells: f64,
    /// Area by category (combinational, registers, memories).
    pub area_breakdown: HashMap<String, f64>,
    /// Longest register-to-register combinational path, ns.
    pub critical_path_ns: f64,
    /// Achievable cycle length (critical path + setup), ns.
    pub cycle_ns: f64,
    /// Total state bits in flip-flops.
    pub ff_bits: u64,
    /// Total memory bits.
    pub mem_bits: u64,
    /// Dynamic power estimate at the maximum frequency, mW.
    pub power_mw: f64,
}

/// Runs area, timing and power analysis over a module.
///
/// # Errors
///
/// Fails if the module does not elaborate or timing does not converge
/// (combinational loop).
pub fn analyze(module: &VModule) -> Result<TechReport, VlogError> {
    let netlist = Netlist::elaborate(module)?;

    // ---- area ----
    let mut comb_ge = 0.0;
    for node in &netlist.comb {
        comb_ge += expr_area_ge(&node.expr, &netlist);
    }
    let mut ff_ge = 0.0;
    let mut ff_bits = 0u64;
    for n in &netlist.nets {
        if n.is_reg {
            ff_bits += u64::from(n.width);
            ff_ge += f64::from(n.width) * FF_GE;
        }
    }
    for st in &netlist.ff {
        comb_ge += stmt_area_ge(st, &netlist);
    }
    let mut mem_ge = 0.0;
    let mut mem_bits = 0u64;
    for m in &netlist.mems {
        let bits = u64::from(m.width) * m.depth;
        mem_bits += bits;
        mem_ge += bits as f64 * RAM_BIT_GE + m.depth as f64 * 0.2;
    }
    let mut area_breakdown = HashMap::new();
    area_breakdown.insert("combinational".to_owned(), comb_ge * CELLS_PER_GE);
    area_breakdown.insert("registers".to_owned(), ff_ge * CELLS_PER_GE);
    area_breakdown.insert("memories".to_owned(), mem_ge * CELLS_PER_GE);
    let area_cells = (comb_ge + ff_ge + mem_ge) * CELLS_PER_GE;

    // ---- timing ----
    // Arrival-time relaxation over the combinational graph.
    let mut arrivals: Vec<f64> =
        netlist.nets.iter().map(|n| if n.is_reg { CLK_Q_NS } else { 0.0 }).collect();
    let node_count = netlist.comb.len();
    let mut changed = true;
    let mut sweeps = 0usize;
    while changed {
        changed = false;
        sweeps += 1;
        if sweeps > node_count + 2 {
            return Err(VlogError::new("timing analysis did not converge (combinational loop?)"));
        }
        for node in &netlist.comb {
            let t = expr_delay_ns(&node.expr, &netlist, &arrivals);
            if t > arrivals[node.target.0] + 1e-12 {
                arrivals[node.target.0] = t;
                changed = true;
            }
        }
    }
    // Paths end at flip-flop / memory-write inputs and module outputs.
    let mut worst: f64 = 0.0;
    for st in &netlist.ff {
        worst = worst.max(stmt_delay_ns(st, &netlist, &arrivals, 0.0));
    }
    for n in &netlist.nets {
        if !n.is_reg && !n.is_input {
            if let Some(id) = netlist.net_id(&n.name) {
                worst = worst.max(arrivals[id.0]);
            }
        }
    }
    let critical_path_ns = worst;
    let cycle_ns = critical_path_ns + SETUP_NS;
    let ghz = if cycle_ns > 0.0 { 1.0 / cycle_ns } else { 0.0 };
    let power_mw = area_cells * ghz * POWER_MW_PER_CELL_GHZ;

    Ok(TechReport {
        area_cells,
        area_breakdown,
        critical_path_ns,
        cycle_ns,
        ff_bits,
        mem_bits,
        power_mw,
    })
}

/// Gate-equivalent area of one expression tree.
fn expr_area_ge(e: &VExpr, nl: &Netlist) -> f64 {
    let w = |x: &VExpr| expr_width(x, nl);
    match e {
        VExpr::Net(_) | VExpr::Const(_) | VExpr::Slice(_, _, _) => 0.0,
        VExpr::Index(m, a) => {
            // Each read-port instance costs sense/mux wiring plus an
            // address decoder — ports dominate multi-ported register
            // files, which is why sharing them matters.
            let (width, depth) = nl
                .mem_id(m)
                .map(|id| (f64::from(nl.mems[id.0].width), nl.mems[id.0].depth))
                .unwrap_or((1.0, 2));
            expr_area_ge(a, nl) + width * 2.0 + log2c(depth) * depth as f64 * 0.05
        }
        VExpr::Unary(op, a) => {
            let aw = f64::from(w(a));
            expr_area_ge(a, nl)
                + match op {
                    VUnOp::Not => aw,
                    VUnOp::Neg => aw * 5.0,
                    VUnOp::RedOr => aw,
                    VUnOp::LNot => aw + 1.0,
                }
        }
        VExpr::Binary(op, a, b) => {
            let aw = f64::from(w(a));
            expr_area_ge(a, nl)
                + expr_area_ge(b, nl)
                + match op {
                    VBinOp::Add | VBinOp::Sub => aw * 5.0,
                    VBinOp::Mul => aw * aw * 4.0,
                    VBinOp::Div | VBinOp::Mod | VBinOp::SDiv | VBinOp::SRem => aw * aw * 6.0,
                    VBinOp::And | VBinOp::Or | VBinOp::Xor => aw,
                    VBinOp::Shl | VBinOp::Shr | VBinOp::AShr => {
                        if matches!(b.as_ref(), VExpr::Const(_)) {
                            0.0 // constant shift is wiring
                        } else {
                            aw * log2c(u64::from(w(a))) * 1.8
                        }
                    }
                    VBinOp::Eq | VBinOp::Ne => aw * 1.3,
                    VBinOp::Lt | VBinOp::Le | VBinOp::SLt | VBinOp::SLe => aw * 5.0,
                }
        }
        VExpr::Cond(c, t, f) => {
            let tw = f64::from(w(t));
            expr_area_ge(c, nl) + expr_area_ge(t, nl) + expr_area_ge(f, nl) + tw * 1.8
        }
        VExpr::Concat(parts) => parts.iter().map(|p| expr_area_ge(p, nl)).sum(),
        VExpr::Zext(a, _) | VExpr::Sext(a, _, _) | VExpr::Trunc(a, _) => expr_area_ge(a, nl),
    }
}

fn stmt_area_ge(st: &VStmt, nl: &Netlist) -> f64 {
    match st {
        VStmt::NonBlocking { lhs, rhs } => {
            // A memory write port costs like a read port.
            let addr = match lhs {
                LValue::Index(m, a) => {
                    let (width, depth) = nl
                        .mem_id(m)
                        .map(|id| (f64::from(nl.mems[id.0].width), nl.mems[id.0].depth))
                        .unwrap_or((1.0, 2));
                    expr_area_ge(a, nl) + width * 2.0 + log2c(depth) * depth as f64 * 0.05
                }
                _ => 0.0,
            };
            addr + expr_area_ge(rhs, nl)
        }
        VStmt::If { cond, then_body, else_body } => {
            // The condition gates write enables; each guarded
            // destination costs one enable mux per bit, approximated by
            // the bodies' own expression areas plus the condition once.
            expr_area_ge(cond, nl)
                + then_body.iter().map(|s| stmt_area_ge(s, nl)).sum::<f64>()
                + else_body.iter().map(|s| stmt_area_ge(s, nl)).sum::<f64>()
        }
    }
}

/// Propagation delay of an expression given leaf arrival times.
fn expr_delay_ns(e: &VExpr, nl: &Netlist, arrivals: &[f64]) -> f64 {
    let w = |x: &VExpr| u64::from(expr_width(x, nl));
    match e {
        VExpr::Net(n) | VExpr::Slice(n, _, _) => nl.net_id(n).map_or(0.0, |id| arrivals[id.0]),
        VExpr::Const(_) => 0.0,
        VExpr::Index(m, a) => {
            let mid = nl.mem_id(m).expect("validated memory");
            let depth = nl.mems[mid.0].depth;
            let addr_t = expr_delay_ns(a, nl, arrivals).max(CLK_Q_NS);
            addr_t + 3.0 * GATE_NS + 0.2 * log2c(depth)
        }
        VExpr::Unary(op, a) => {
            let at = expr_delay_ns(a, nl, arrivals);
            at + match op {
                VUnOp::Not => GATE_NS,
                VUnOp::Neg => (2.0 + 2.0 * log2c(w(a))) * GATE_NS,
                VUnOp::RedOr | VUnOp::LNot => log2c(w(a)) * GATE_NS,
            }
        }
        VExpr::Binary(op, a, b) => {
            let t = expr_delay_ns(a, nl, arrivals).max(expr_delay_ns(b, nl, arrivals));
            let aw = w(a);
            t + match op {
                // Carry-lookahead style adders.
                VBinOp::Add | VBinOp::Sub => (2.0 + 2.0 * log2c(aw)) * GATE_NS,
                VBinOp::Mul => (4.0 * log2c(aw) + 6.0) * GATE_NS,
                VBinOp::Div | VBinOp::Mod | VBinOp::SDiv | VBinOp::SRem => {
                    3.0 * aw as f64 * GATE_NS
                }
                VBinOp::And | VBinOp::Or | VBinOp::Xor => GATE_NS,
                VBinOp::Shl | VBinOp::Shr | VBinOp::AShr => {
                    if matches!(b.as_ref(), VExpr::Const(_)) {
                        0.0
                    } else {
                        log2c(aw) * 1.2 * GATE_NS
                    }
                }
                VBinOp::Eq | VBinOp::Ne => (1.0 + log2c(aw)) * GATE_NS,
                VBinOp::Lt | VBinOp::Le | VBinOp::SLt | VBinOp::SLe => {
                    (2.0 + 2.0 * log2c(aw)) * GATE_NS
                }
            }
        }
        VExpr::Cond(c, t, f) => {
            let ct = expr_delay_ns(c, nl, arrivals);
            let tt = expr_delay_ns(t, nl, arrivals);
            let ft = expr_delay_ns(f, nl, arrivals);
            ct.max(tt).max(ft) + 1.2 * GATE_NS
        }
        VExpr::Concat(parts) => {
            parts.iter().map(|p| expr_delay_ns(p, nl, arrivals)).fold(0.0, f64::max)
        }
        VExpr::Zext(a, _) | VExpr::Sext(a, _, _) | VExpr::Trunc(a, _) => {
            expr_delay_ns(a, nl, arrivals)
        }
    }
}

fn stmt_delay_ns(st: &VStmt, nl: &Netlist, arrivals: &[f64], guard_t: f64) -> f64 {
    match st {
        VStmt::NonBlocking { lhs, rhs } => {
            let addr_t = match lhs {
                LValue::Index(_, a) => expr_delay_ns(a, nl, arrivals),
                _ => 0.0,
            };
            expr_delay_ns(rhs, nl, arrivals).max(addr_t).max(guard_t)
        }
        VStmt::If { cond, then_body, else_body } => {
            let g = guard_t.max(expr_delay_ns(cond, nl, arrivals) + GATE_NS);
            then_body
                .iter()
                .chain(else_body)
                .map(|s| stmt_delay_ns(s, nl, arrivals, g))
                .fold(g, f64::max)
        }
    }
}

/// Width of an expression (the module is assumed validated, so the
/// recursion mirrors the elaboration rules).
fn expr_width(e: &VExpr, nl: &Netlist) -> u32 {
    match e {
        VExpr::Net(n) => nl.net_id(n).map_or(1, |id| nl.nets[id.0].width),
        VExpr::Const(c) => c.width(),
        VExpr::Index(m, _) => nl.mem_id(m).map_or(1, |id| nl.mems[id.0].width),
        VExpr::Slice(_, hi, lo) => hi - lo + 1,
        VExpr::Unary(op, a) => match op {
            VUnOp::RedOr | VUnOp::LNot => 1,
            _ => expr_width(a, nl),
        },
        VExpr::Binary(op, a, _) => {
            if op.is_comparison() {
                1
            } else {
                expr_width(a, nl)
            }
        }
        VExpr::Cond(_, t, _) => expr_width(t, nl),
        VExpr::Concat(parts) => parts.iter().map(|p| expr_width(p, nl)).sum(),
        VExpr::Zext(a, w) => expr_width(a, nl) + w,
        VExpr::Sext(_, _, to) => *to,
        VExpr::Trunc(_, w) => *w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn adder(width: u32) -> VModule {
        let mut m = VModule::new("adder");
        m.add_input("a", width);
        m.add_input("b", width);
        m.add_reg("sum", width);
        m.always_ff(vec![VStmt::NonBlocking {
            lhs: LValue::net("sum"),
            rhs: VExpr::binary(VBinOp::Add, VExpr::net("a"), VExpr::net("b")),
        }]);
        m
    }

    #[test]
    fn adder_report_is_sane() {
        let r = analyze(&adder(16)).expect("analyzes");
        assert!(r.area_cells > 0.0);
        assert_eq!(r.ff_bits, 16);
        assert_eq!(r.mem_bits, 0);
        assert!(r.cycle_ns > r.critical_path_ns);
        assert!(r.power_mw > 0.0);
    }

    #[test]
    fn wider_adders_cost_more_area() {
        let a8 = analyze(&adder(8)).expect("analyzes");
        let a32 = analyze(&adder(32)).expect("analyzes");
        assert!(a32.area_cells > a8.area_cells);
        assert!(a32.cycle_ns >= a8.cycle_ns, "log-depth adders grow slowly");
    }

    #[test]
    fn multiplier_dominates_adder() {
        let mut m = VModule::new("mul");
        m.add_input("a", 16);
        m.add_input("b", 16);
        m.add_reg("p", 16);
        m.always_ff(vec![VStmt::NonBlocking {
            lhs: LValue::net("p"),
            rhs: VExpr::binary(VBinOp::Mul, VExpr::net("a"), VExpr::net("b")),
        }]);
        let mul = analyze(&m).expect("analyzes");
        let add = analyze(&adder(16)).expect("analyzes");
        assert!(mul.area_cells > 4.0 * add.area_cells);
        assert!(mul.critical_path_ns > add.critical_path_ns);
    }

    #[test]
    fn chained_logic_lengthens_critical_path() {
        let mut m = VModule::new("chain");
        m.add_input("a", 8);
        m.add_wire("x", 8);
        m.add_wire("y", 8);
        m.add_reg("r", 8);
        m.assign(
            LValue::net("x"),
            VExpr::binary(VBinOp::Add, VExpr::net("a"), VExpr::const_u64(1, 8)),
        );
        m.assign(LValue::net("y"), VExpr::binary(VBinOp::Add, VExpr::net("x"), VExpr::net("a")));
        m.always_ff(vec![VStmt::NonBlocking { lhs: LValue::net("r"), rhs: VExpr::net("y") }]);
        let two = analyze(&m).expect("analyzes");
        let one = analyze(&adder(8)).expect("analyzes");
        assert!(two.critical_path_ns > one.critical_path_ns);
    }

    #[test]
    fn memory_bits_counted() {
        let mut m = VModule::new("ram");
        m.add_memory("ram", 16, 256);
        m.add_input("addr", 8);
        m.add_wire("q", 16);
        m.assign(LValue::net("q"), VExpr::Index("ram".into(), Box::new(VExpr::net("addr"))));
        let r = analyze(&m).expect("analyzes");
        assert_eq!(r.mem_bits, 4096);
        assert!(r.area_breakdown["memories"] > 0.0);
    }

    #[test]
    fn constant_shift_is_free() {
        let build = |dynamic: bool| {
            let mut m = VModule::new("sh");
            m.add_input("a", 16);
            m.add_input("s", 16);
            m.add_wire("q", 16);
            let amount = if dynamic { VExpr::net("s") } else { VExpr::const_u64(3, 16) };
            m.assign(LValue::net("q"), VExpr::binary(VBinOp::Shl, VExpr::net("a"), amount));
            analyze(&m).expect("analyzes")
        };
        let fixed = build(false);
        let dynamic = build(true);
        assert!(dynamic.area_cells > fixed.area_cells);
        assert!(dynamic.critical_path_ns > fixed.critical_path_ns);
    }
}
