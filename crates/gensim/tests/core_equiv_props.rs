//! Property-based differential test: the tree-walking processing core
//! and the compiled bytecode core must be bit-identical on random
//! programs — the invariant that makes the "compiled simulator"
//! optimization safe.

use gensim::{CoreKind, StopReason, Xsim, XsimOptions};
use isdl::samples::TOY;
use proptest::prelude::*;
use xasm::Assembler;

/// A random but always-valid TOY instruction.
fn line(op: u8, d: u8, a: u8, b: u8, imm: u8, mode: bool) -> String {
    let (d, a, b) = (d % 8, a % 8, b % 8);
    let src = if mode { format!("ind(R{b})") } else { format!("reg(R{b})") };
    match op % 10 {
        0 => format!("add R{d}, R{a}, {src}"),
        1 => format!("sub R{d}, R{a}, {src}"),
        2 => format!("and R{d}, R{a}, {src}"),
        3 => format!("xor R{d}, R{a}, {src}"),
        4 => format!("li R{d}, {imm}"),
        5 => format!("st {imm}, R{a}"),
        6 => format!("ld R{d}, {imm}"),
        7 => format!("mac R{a}, R{b}"),
        8 => format!("clracc | mv R{d}, R{a}"),
        _ => format!("mvacc R{d}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_and_bytecode_agree_on_random_programs(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<bool>()),
            1..24,
        ),
        seed_mem in proptest::collection::vec(any::<u16>(), 8),
    ) {
        let machine = isdl::load(TOY).expect("loads");
        let mut src = String::new();
        for (op, d, a, b, imm, mode) in &ops {
            src.push_str(&line(*op, *d, *a, *b, *imm, *mode));
            src.push('\n');
        }
        src.push_str("__stop: jmp __stop\n");
        let program = Assembler::new(&machine).assemble(&src).expect("assembles");

        let run = |core: CoreKind| {
            let mut sim = Xsim::generate_with(
                &machine,
                XsimOptions { core, ..XsimOptions::default() },
            )
            .expect("generates");
            sim.load_program(&program);
            let dm = machine.storage_by_name("DM").expect("DM").0;
            for (i, &v) in seed_mem.iter().enumerate() {
                sim.state_mut().poke(dm, i as u64, bitv::BitVector::from_u64(u64::from(v), 16));
            }
            prop_assert_eq!(sim.run(100_000), StopReason::Halted);
            // Collect the full architectural state.
            let mut dump: Vec<u64> = Vec::new();
            for (si, s) in machine.storages.iter().enumerate() {
                for c in 0..s.cells() {
                    dump.push(sim.state().read_u64(isdl::rtl::StorageId(si), c));
                }
            }
            let cycles = sim.stats().cycles;
            Ok((dump, cycles))
        };

        let (tree_state, tree_cycles) = run(CoreKind::Tree)?;
        let (byte_state, byte_cycles) = run(CoreKind::Bytecode)?;
        prop_assert_eq!(tree_state, byte_state, "state diverged for:\n{}", src);
        prop_assert_eq!(tree_cycles, byte_cycles, "cycle counts diverged for:\n{}", src);
    }

    #[test]
    fn offline_and_per_fetch_decode_agree(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<bool>()),
            1..12,
        ),
    ) {
        let machine = isdl::load(TOY).expect("loads");
        let mut src = String::new();
        for (op, d, a, b, imm, mode) in &ops {
            src.push_str(&line(*op, *d, *a, *b, *imm, *mode));
            src.push('\n');
        }
        src.push_str("__stop: jmp __stop\n");
        let program = Assembler::new(&machine).assemble(&src).expect("assembles");
        let run = |offline: bool| {
            let mut sim = Xsim::generate_with(
                &machine,
                XsimOptions { core: CoreKind::Bytecode, offline_decode: offline, ..XsimOptions::default() },
            )
            .expect("generates");
            sim.load_program(&program);
            prop_assert_eq!(sim.run(100_000), StopReason::Halted);
            let rf = machine.storage_by_name("RF").expect("RF").0;
            let dump: Vec<u64> = (0..8).map(|r| sim.state().read_u64(rf, r)).collect();
            Ok(dump)
        };
        // Stalls come from the off-line pass, so only state (not cycle
        // counts) must agree when it is disabled.
        prop_assert_eq!(run(true)?, run(false)?);
    }
}
