//! The `xsim-stats/1` and `xsim-trace/1` report invariants, on both a
//! single-field machine (acc16) and the TOY VLIW: per-field retire
//! counts sum to instructions retired, IPC is the cycles/instructions
//! quotient, the event ring buffer keeps the execution tail, and the
//! emitted JSON round-trips through the parser with the documented
//! schema strings.

use gensim::{stats_json, trace_json, Xsim, STATS_SCHEMA, TRACE_SCHEMA};
use xasm::Assembler;

const ACC16_PROG: &str = "ldi 7\naddm ten\nsta 0\nhalt\n.data\n.org 20\nten: .word 10\n";

fn run_to_halt<'m>(machine: &'m isdl::Machine, asm: &str, trace: Option<usize>) -> Xsim<'m> {
    let program = Assembler::new(machine).assemble(asm).expect("assembles");
    let mut sim = Xsim::generate(machine).expect("generates");
    sim.load_program(&program);
    if let Some(capacity) = trace {
        sim.enable_event_trace(capacity);
    }
    assert_eq!(sim.run(10_000), gensim::StopReason::Halted);
    sim
}

/// Every executed instruction selects exactly one operation per field
/// (nops included), so each field's retire counts must sum to the
/// instruction total — the core invariant consumers of the stats
/// report rely on.
#[test]
fn per_field_retire_counts_sum_to_instructions() {
    let acc16 = isdl::load(isdl::samples::ACC16).expect("loads");
    let toy = isdl::load(isdl::samples::TOY).expect("loads");
    // TOY has no halt op; a self-jump halts the scheduler.
    let toy_prog =
        "li R1, 5\nli R2, 6 | mv R4, R1\nadd R3, R1, reg(R2)\nst 0, R3\ndone: jmp done\n";
    for (machine, asm) in [(&acc16, ACC16_PROG), (&toy, toy_prog)] {
        let sim = run_to_halt(machine, asm, None);
        let json = stats_json(&sim);
        let instructions = json.get_u64("instructions").expect("instructions");
        assert!(instructions > 0);
        let fields = json.get("fields").and_then(|f| f.as_arr()).expect("fields");
        assert_eq!(fields.len(), machine.fields.len());
        for field in fields {
            let ops = field.get("ops").and_then(|o| o.as_arr()).expect("ops");
            let retired: u64 = ops.iter().map(|o| o.get_u64("retired").expect("retired")).sum();
            assert_eq!(
                retired,
                instructions,
                "field {} of {}",
                field.get_str("name").unwrap_or("?"),
                machine.name
            );
        }
    }
}

#[test]
fn stats_json_round_trips_with_schema() {
    let machine = isdl::load(isdl::samples::ACC16).expect("loads");
    let sim = run_to_halt(&machine, ACC16_PROG, None);
    let text = stats_json(&sim).to_pretty();
    let parsed = obs::Json::parse(&text).expect("parses");
    assert_eq!(parsed.get_str("schema"), Some(STATS_SCHEMA));
    assert_eq!(parsed.get_str("machine"), Some("acc16"));
    let cycles = parsed.get_u64("cycles").expect("cycles");
    let instructions = parsed.get_u64("instructions").expect("instructions");
    let ipc = parsed.get_f64("ipc").expect("ipc");
    assert_eq!(cycles, 4);
    assert_eq!(instructions, 4);
    assert!((ipc - instructions as f64 / cycles as f64).abs() < 1e-12);
    assert!(parsed.get_u64("stall_cycles").expect("stalls") <= cycles);
}

#[test]
fn event_trace_records_writes_and_keeps_the_tail() {
    let machine = isdl::load(isdl::samples::ACC16).expect("loads");
    // Ample capacity: every event retained, nothing dropped.
    let sim = run_to_halt(&machine, ACC16_PROG, Some(64));
    let trace = sim.event_trace().expect("enabled");
    assert_eq!(trace.len(), 4);
    assert_eq!(trace.dropped(), 0);
    let first = trace.events().next().expect("first event");
    assert_eq!(first.cycle, 0);
    assert!(!first.writes.is_empty(), "ldi writes ACC");

    // Capacity 2: the ring evicts the oldest events and counts them;
    // the surviving events are the last two of the run.
    let sim = run_to_halt(&machine, ACC16_PROG, Some(2));
    let trace = sim.event_trace().expect("enabled");
    assert_eq!(trace.len(), 2);
    assert_eq!(trace.dropped(), 2);
    let cycles: Vec<u64> = trace.events().map(|e| e.cycle).collect();
    assert_eq!(cycles, vec![2, 3], "the tail survives, not the head");
}

#[test]
fn trace_json_round_trips_with_schema() {
    let machine = isdl::load(isdl::samples::ACC16).expect("loads");
    let sim = run_to_halt(&machine, ACC16_PROG, Some(8));
    let text = trace_json(&sim).to_pretty();
    let parsed = obs::Json::parse(&text).expect("parses");
    assert_eq!(parsed.get_str("schema"), Some(TRACE_SCHEMA));
    assert_eq!(parsed.get_u64("capacity"), Some(8));
    assert_eq!(parsed.get_u64("dropped"), Some(0));
    let events = parsed.get("events").and_then(|e| e.as_arr()).expect("events");
    assert_eq!(events.len(), 4);
    let ops = events[0].get("ops").and_then(|o| o.as_arr()).expect("ops");
    assert_eq!(ops[0].as_str(), Some("ldi"));
    let writes = events[0].get("writes").and_then(|w| w.as_arr()).expect("writes");
    assert_eq!(writes[0].get_str("storage"), Some("ACC"));
    assert_eq!(writes[0].get_str("value"), Some("16'h0007"));
}

#[test]
fn disabled_trace_emits_empty_report() {
    let machine = isdl::load(isdl::samples::ACC16).expect("loads");
    let sim = run_to_halt(&machine, ACC16_PROG, None);
    let json = trace_json(&sim);
    assert_eq!(json.get_u64("capacity"), Some(0));
    assert_eq!(json.get("events").and_then(|e| e.as_arr()).map(<[_]>::len), Some(0));
}
