//! Regression property test for signed division and remainder at
//! arbitrary operand widths.
//!
//! The bytecode core's fast u64 lane once sign-extended `/s` and `%s`
//! operands from 64 bits instead of from the operand's ISDL width,
//! so e.g. an 8-bit `0x80 /s 0xFF` (−128 / −1) divided the *unsigned*
//! values. This suite pins the fix: for random widths 1..=64 and
//! random operands — always augmented with the MIN/−1 overflow pair
//! and division by zero — the tree core, the bytecode core, and the
//! translated basic-block tier must all match the shared
//! [`gensim::exec::eval_binop`] reference bit-for-bit.

use bitv::BitVector;
use gensim::{CoreKind, StopReason, Xsim, XsimOptions};
use isdl::rtl::BinOp;
use proptest::prelude::*;
use xasm::Assembler;

/// A minimal machine with `w`-bit registers and one instruction that
/// computes both the signed quotient and the signed remainder.
fn machine_at_width(w: u32) -> isdl::Machine {
    let src = format!(
        r#"
        machine "sd" {{ format {{ word 16; }} }}
        storage {{ imem IM 16 x 16; pc PC 4; register A {w}; register B {w}; register Q {w}; register R {w}; }}
        field F {{
            op sdiv() {{ encode {{ word[15:12] = 0b0001; }} action {{ Q <- A /s B; R <- A %s B; }} }}
            op halt() {{ encode {{ word[15:12] = 0b1111; }} }}
            op nop()  {{ encode {{ word[15:12] = 0b0000; }} }}
        }}
        "#
    );
    isdl::load(&src).expect("width-parameterized machine loads")
}

fn mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn signed_div_rem_match_the_reference_at_every_width(
        w in 1u32..=64,
        ra in any::<u64>(),
        rb in any::<u64>(),
    ) {
        let machine = machine_at_width(w);
        let program = Assembler::new(&machine).assemble("sdiv\nhalt\n").expect("assembles");
        let m = mask(w);
        let min = (m >> 1) + 1; // sign bit alone: the most negative value
        let pairs = [
            (ra & m, rb & m),   // the random draw
            (min, m),           // MIN /s -1: the overflow pair
            (ra & m, 0),        // division by zero
            (min, 1),
            (m, min),           // -1 /s MIN
        ];
        let (a_id, b_id, q_id, r_id) = (
            machine.storage_by_name("A").expect("A").0,
            machine.storage_by_name("B").expect("B").0,
            machine.storage_by_name("Q").expect("Q").0,
            machine.storage_by_name("R").expect("R").0,
        );
        for (a, b) in pairs {
            let av = BitVector::from_u64(a, w);
            let bv = BitVector::from_u64(b, w);
            let want_q = gensim::exec::eval_binop(BinOp::SDiv, &av, &bv);
            let want_r = gensim::exec::eval_binop(BinOp::SRem, &av, &bv);
            for (core, translate) in [
                (CoreKind::Tree, false),
                (CoreKind::Bytecode, false),
                (CoreKind::Bytecode, true),
            ] {
                let options = XsimOptions { core, translate, ..XsimOptions::default() };
                let mut sim = Xsim::generate_with(&machine, options).expect("generates");
                sim.load_program(&program);
                sim.state_mut().poke(a_id, 0, av.clone());
                sim.state_mut().poke(b_id, 0, bv.clone());
                prop_assert_eq!(sim.run(100), StopReason::Halted);
                prop_assert_eq!(
                    sim.state().read(q_id, 0),
                    &want_q,
                    "quotient w={} a={:#x} b={:#x} core={:?} translate={}",
                    w, a, b, core, translate
                );
                prop_assert_eq!(
                    sim.state().read(r_id, 0),
                    &want_r,
                    "remainder w={} a={:#x} b={:#x} core={:?} translate={}",
                    w, a, b, core, translate
                );
            }
        }
    }
}
