//! The translated basic-block tier (the step past §3.3.3's compiled
//! processing core, in the direction of PAPERS.md's specialized /
//! translated simulation).
//!
//! The bytecode interpreter re-dispatches per instruction: fetch the
//! decoded entry, walk its plans, read parameter slots, re-resolve
//! per-write latencies. All of that is loop-invariant for a given
//! instruction memory image, so the translator hoists it: each basic
//! block (straight-line run of instructions ending at a control-flow,
//! halting, or self-modifying operation) is turned once into a trace of
//! [`BlockInstr`]s keyed by its start PC. Per instruction, the plans of
//! every field slot are *fused* into a single flat μ-op program with
//! parameters baked in as constants and per-write latencies baked into
//! the write μ-ops — then constant-folded and dead-code-eliminated,
//! which is sound because a jump-free fused trace is single-assignment.
//!
//! Correctness contract: a fused trace stages exactly the writes (same
//! order, same values, same latencies) the interpreter would, and reads
//! the same cycle-start state — so the translated core is bit-identical
//! to the interpreter by construction, which `tests/
//! translate_differential.rs` pins across the sample corpus.
//!
//! Cache coherence: the scheduler invalidates blocks *precisely* on
//! stores into instruction memory — a committed write to imem cell `i`
//! kills every block whose decode window `[start, end + max_size - 1)`
//! covers `i` (an instruction may span up to `max_size` words).

use crate::bytecode::{bin_u64, mask, sext64, BOp, Compiled, Reg};
use crate::exec::StagedWrite;
use crate::sched::DecodedEntry;
use crate::state::State;
use bitv::BitVector;
use isdl::rtl::{BinOp, StorageId, UnOp};
use std::collections::HashMap;
use std::rc::Rc;

/// One μ-op of a fused trace: the bytecode ops minus `ReadParam`
/// (parameters are decode-time constants, baked in at translation),
/// plus immediate/constant-index forms the folder produces and writes
/// carrying their own latency.
#[derive(Debug, Clone)]
pub(crate) enum TOp {
    Const {
        dst: Reg,
        val: u64,
    },
    ReadSt {
        dst: Reg,
        sid: StorageId,
    },
    ReadIdx {
        dst: Reg,
        sid: StorageId,
        idx: Reg,
        depth: u64,
    },
    /// `ReadIdx` whose index folded to a constant (pre-wrapped).
    ReadFix {
        dst: Reg,
        sid: StorageId,
        idx: u64,
    },
    Bin {
        op: BinOp,
        w: u32,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `Bin` whose right operand folded to a constant.
    BinImm {
        op: BinOp,
        w: u32,
        dst: Reg,
        a: Reg,
        imm: u64,
    },
    Un {
        op: UnOp,
        w: u32,
        dst: Reg,
        a: Reg,
    },
    Slice {
        dst: Reg,
        src: Reg,
        hi: u32,
        lo: u32,
    },
    Sext {
        dst: Reg,
        src: Reg,
        from_w: u32,
        to_w: u32,
    },
    Mask {
        dst: Reg,
        src: Reg,
        w: u32,
    },
    Cat {
        dst: Reg,
        a: Reg,
        b: Reg,
        b_width: u32,
    },
    JmpIfZero {
        cond: Reg,
        target: usize,
    },
    Jmp {
        target: usize,
    },
    Write {
        sid: StorageId,
        idx: Option<Reg>,
        depth: u64,
        hi: u32,
        lo: u32,
        src: Reg,
        latency: u32,
    },
    /// `Write` whose index folded to a constant (pre-wrapped).
    WriteFix {
        sid: StorageId,
        idx: u64,
        hi: u32,
        lo: u32,
        src: Reg,
        latency: u32,
    },
}

/// The fused μ-op trace of one instruction: every field slot's action
/// program, then every slot's side-effect program, concatenated in the
/// interpreter's write order.
#[derive(Debug)]
pub(crate) struct Fused {
    pub(crate) code: Vec<TOp>,
    pub(crate) n_regs: usize,
}

/// One instruction of a translated block. `fused` is `None` when the
/// instruction could not be fused (wide RTL plans) — the scheduler then
/// falls back to the interpreter for that instruction only.
#[derive(Debug)]
pub(crate) struct BlockInstr {
    pub(crate) pc: u64,
    pub(crate) entry: Rc<DecodedEntry>,
    pub(crate) fused: Option<Fused>,
}

/// A translated basic block: the straight-line instructions from
/// `start` (inclusive) to `end` (exclusive, in imem words).
#[derive(Debug)]
pub(crate) struct Block {
    pub(crate) start: u64,
    pub(crate) end: u64,
    pub(crate) instrs: Vec<BlockInstr>,
}

/// The block cache plus the translation counters surfaced by
/// [`crate::TranslateStats`].
#[derive(Debug, Default)]
pub(crate) struct BlockCache {
    map: HashMap<u64, Rc<Block>>,
    /// Bumped whenever any block is dropped or the cache is cleared:
    /// the dispatch loop snapshots it at block fetch and only re-checks
    /// block liveness via `contains` when the snapshot goes stale.
    pub(crate) generation: u64,
    pub(crate) blocks_translated: u64,
    pub(crate) invalidations: u64,
    pub(crate) fused_ops_removed: u64,
}

impl BlockCache {
    pub(crate) fn get(&self, start: u64) -> Option<Rc<Block>> {
        self.map.get(&start).map(Rc::clone)
    }

    pub(crate) fn contains(&self, start: u64) -> bool {
        self.map.contains_key(&start)
    }

    pub(crate) fn insert(&mut self, block: Rc<Block>) {
        self.blocks_translated += 1;
        obs::log::event_with(obs::Level::Debug, "gensim.translate", "block", || {
            obs::Json::obj()
                .with("start", block.start)
                .with("end", block.end)
                .with("instrs", block.instrs.len())
        });
        self.map.insert(block.start, block);
    }

    /// Drops every block whose decode window covers a committed write
    /// to imem cell `index`. Instructions read up to `max_size` words
    /// from their start address, so a block decoding `[start, end)` is
    /// affected by any write in `[start, end + max_size - 1)`.
    pub(crate) fn invalidate_write(&mut self, index: u64, max_size: u64) {
        let before = self.map.len();
        self.map.retain(|_, b| !(b.start <= index && index < b.end + (max_size - 1)));
        let dropped = (before - self.map.len()) as u64;
        self.invalidations += dropped;
        if dropped > 0 {
            self.generation += 1;
            obs::log::event_with(obs::Level::Debug, "gensim.translate", "invalidate", || {
                obs::Json::obj().with("imem_index", index).with("blocks_dropped", dropped)
            });
        }
    }

    /// Drops all blocks (program reload); counters keep accumulating.
    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.generation += 1;
    }
}

/// Public translation statistics (see `xsim-stats/1`'s `translate`
/// block in docs/OBSERVABILITY.md).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslateStats {
    /// Whether the translated tier is engaged for the current options
    /// (bytecode core, off-line decode, no breakpoints, addressable
    /// PC).
    pub enabled: bool,
    /// Basic blocks translated (including re-translations after
    /// invalidation).
    pub blocks: u64,
    /// Blocks dropped by precise invalidation on imem stores.
    pub invalidations: u64,
    /// Instructions retired through fused block dispatch.
    pub block_instructions: u64,
    /// Instructions retired through the interpreter (wide-RTL
    /// fallbacks inside blocks, or runs with translation inactive).
    pub interp_instructions: u64,
    /// μ-ops eliminated from fused traces by constant folding and dead
    /// code elimination.
    pub fused_ops_removed: u64,
}

/// Fuses one decoded instruction's plans into a single μ-op trace:
/// action programs of every slot, then side-effect programs, registers
/// and jump targets rebased, `ReadParam` lowered to constants, and
/// per-plan write latency baked into each write. Returns `None` (the
/// interpreter fallback) if any plan is wide RTL or the combined
/// register file would overflow the `u16` register space.
pub(crate) fn fuse_entry(entry: &DecodedEntry, removed: &mut u64) -> Option<Fused> {
    let mut phases: Vec<(&Compiled, &[u64], u32)> = Vec::new();
    for plan in &entry.plans {
        phases.push((plan.action.as_ref(), &plan.params, plan.latency));
    }
    for plan in &entry.plans {
        if let Some(se) = plan.side_effects.as_deref() {
            phases.push((se, &plan.params, plan.latency));
        }
    }
    let mut code: Vec<TOp> = Vec::new();
    let mut n_regs: u32 = 0;
    for (compiled, params, latency) in phases {
        let Compiled::Code(p) = compiled else { return None };
        if n_regs + p.n_regs as u32 > u32::from(Reg::MAX) + 1 {
            return None;
        }
        let code_base = code.len();
        for op in &p.code {
            code.push(lower(op, params, latency, n_regs, code_base));
        }
        n_regs += p.n_regs as u32;
    }
    optimize(&mut code, n_regs as usize, removed);
    Some(Fused { code, n_regs: n_regs as usize })
}

#[inline]
fn off(r: Reg, base: u32) -> Reg {
    (u32::from(r) + base) as Reg
}

/// Rebases one bytecode op into the fused trace: registers shifted by
/// `base`, jump targets by `code_base`, parameters materialized from
/// `params`, writes stamped with `latency`.
fn lower(op: &BOp, params: &[u64], latency: u32, base: u32, code_base: usize) -> TOp {
    match op {
        BOp::Const { dst, val } => TOp::Const { dst: off(*dst, base), val: *val },
        BOp::ReadParam { dst, slot } => {
            TOp::Const { dst: off(*dst, base), val: params[*slot as usize] }
        }
        BOp::ReadSt { dst, sid } => TOp::ReadSt { dst: off(*dst, base), sid: *sid },
        BOp::ReadIdx { dst, sid, idx, depth } => {
            TOp::ReadIdx { dst: off(*dst, base), sid: *sid, idx: off(*idx, base), depth: *depth }
        }
        BOp::Bin { op, w, dst, a, b } => {
            TOp::Bin { op: *op, w: *w, dst: off(*dst, base), a: off(*a, base), b: off(*b, base) }
        }
        BOp::Un { op, w, dst, a } => {
            TOp::Un { op: *op, w: *w, dst: off(*dst, base), a: off(*a, base) }
        }
        BOp::Slice { dst, src, hi, lo } => {
            TOp::Slice { dst: off(*dst, base), src: off(*src, base), hi: *hi, lo: *lo }
        }
        BOp::Sext { dst, src, from_w, to_w } => {
            TOp::Sext { dst: off(*dst, base), src: off(*src, base), from_w: *from_w, to_w: *to_w }
        }
        BOp::Mask { dst, src, w } => {
            TOp::Mask { dst: off(*dst, base), src: off(*src, base), w: *w }
        }
        BOp::Cat { dst, a, b, b_width } => {
            TOp::Cat { dst: off(*dst, base), a: off(*a, base), b: off(*b, base), b_width: *b_width }
        }
        BOp::JmpIfZero { cond, target } => {
            TOp::JmpIfZero { cond: off(*cond, base), target: target + code_base }
        }
        BOp::Jmp { target } => TOp::Jmp { target: target + code_base },
        BOp::Write { sid, idx, depth, hi, lo, src } => TOp::Write {
            sid: *sid,
            idx: idx.map(|r| off(r, base)),
            depth: *depth,
            hi: *hi,
            lo: *lo,
            src: off(*src, base),
            latency,
        },
    }
}

#[inline]
fn un_u64(op: UnOp, w: u32, v: u64) -> u64 {
    match op {
        UnOp::Neg => v.wrapping_neg() & mask(w),
        UnOp::Not => !v & mask(w),
        UnOp::LNot => u64::from(v == 0),
    }
}

/// Constant folding + dead code elimination over a jump-free fused
/// trace. With control flow present the pass is skipped: only the
/// straight-line case is single-assignment, which both passes rely on.
/// Every fold mirrors [`run_fused`]'s arithmetic exactly (shared
/// helpers), so optimized and unoptimized traces stage identical
/// writes.
fn optimize(code: &mut Vec<TOp>, n_regs: usize, removed: &mut u64) {
    if code.iter().any(|op| matches!(op, TOp::Jmp { .. } | TOp::JmpIfZero { .. })) {
        return;
    }
    let before = code.len();

    // Forward constant propagation.
    let mut konst: Vec<Option<u64>> = vec![None; n_regs];
    for slot in code.iter_mut() {
        let rewritten: Option<TOp> = match &*slot {
            TOp::Const { dst, val } => {
                konst[*dst as usize] = Some(*val);
                None
            }
            TOp::ReadSt { dst, .. } | TOp::ReadFix { dst, .. } => {
                konst[*dst as usize] = None;
                None
            }
            TOp::ReadIdx { dst, sid, idx, depth } => {
                konst[*dst as usize] = None;
                konst[*idx as usize].map(|v| TOp::ReadFix { dst: *dst, sid: *sid, idx: v % *depth })
            }
            TOp::Bin { op, w, dst, a, b } => match (konst[*a as usize], konst[*b as usize]) {
                (Some(x), Some(y)) => {
                    let v = bin_u64(*op, *w, x, y);
                    konst[*dst as usize] = Some(v);
                    Some(TOp::Const { dst: *dst, val: v })
                }
                (None, Some(y)) => {
                    konst[*dst as usize] = None;
                    Some(TOp::BinImm { op: *op, w: *w, dst: *dst, a: *a, imm: y })
                }
                _ => {
                    konst[*dst as usize] = None;
                    None
                }
            },
            TOp::BinImm { dst, .. } => {
                konst[*dst as usize] = None;
                None
            }
            TOp::Un { op, w, dst, a } => match konst[*a as usize] {
                Some(v) => {
                    let r = un_u64(*op, *w, v);
                    konst[*dst as usize] = Some(r);
                    Some(TOp::Const { dst: *dst, val: r })
                }
                None => {
                    konst[*dst as usize] = None;
                    None
                }
            },
            TOp::Slice { dst, src, hi, lo } => match konst[*src as usize] {
                Some(v) => {
                    let r = (v >> lo) & mask(hi - lo + 1);
                    konst[*dst as usize] = Some(r);
                    Some(TOp::Const { dst: *dst, val: r })
                }
                None => {
                    konst[*dst as usize] = None;
                    None
                }
            },
            TOp::Sext { dst, src, from_w, to_w } => match konst[*src as usize] {
                Some(v) => {
                    let r = (sext64(v, *from_w) as u64) & mask(*to_w);
                    konst[*dst as usize] = Some(r);
                    Some(TOp::Const { dst: *dst, val: r })
                }
                None => {
                    konst[*dst as usize] = None;
                    None
                }
            },
            TOp::Mask { dst, src, w } => match konst[*src as usize] {
                Some(v) => {
                    let r = v & mask(*w);
                    konst[*dst as usize] = Some(r);
                    Some(TOp::Const { dst: *dst, val: r })
                }
                None => {
                    konst[*dst as usize] = None;
                    None
                }
            },
            TOp::Cat { dst, a, b, b_width } => match (konst[*a as usize], konst[*b as usize]) {
                (Some(x), Some(y)) => {
                    let r = (x << b_width) | y;
                    konst[*dst as usize] = Some(r);
                    Some(TOp::Const { dst: *dst, val: r })
                }
                _ => {
                    konst[*dst as usize] = None;
                    None
                }
            },
            TOp::Write { sid, idx: Some(r), depth, hi, lo, src, latency } => konst[*r as usize]
                .map(|v| TOp::WriteFix {
                    sid: *sid,
                    idx: v % *depth,
                    hi: *hi,
                    lo: *lo,
                    src: *src,
                    latency: *latency,
                }),
            TOp::Write { .. } | TOp::WriteFix { .. } => None,
            TOp::Jmp { .. } | TOp::JmpIfZero { .. } => unreachable!("jump-free trace"),
        };
        if let Some(op) = rewritten {
            *slot = op;
        }
    }

    // Backward dead code elimination: writes are the only side effects.
    let mut live = vec![false; n_regs];
    let mut keep = vec![true; code.len()];
    for (i, op) in code.iter().enumerate().rev() {
        match op {
            TOp::Write { idx, src, .. } => {
                if let Some(r) = idx {
                    live[*r as usize] = true;
                }
                live[*src as usize] = true;
            }
            TOp::WriteFix { src, .. } => live[*src as usize] = true,
            TOp::Const { dst, .. } | TOp::ReadSt { dst, .. } | TOp::ReadFix { dst, .. } => {
                keep[i] = live[*dst as usize];
            }
            TOp::ReadIdx { dst, idx, .. } => {
                keep[i] = live[*dst as usize];
                if keep[i] {
                    live[*idx as usize] = true;
                }
            }
            TOp::Bin { dst, a, b, .. } | TOp::Cat { dst, a, b, .. } => {
                keep[i] = live[*dst as usize];
                if keep[i] {
                    live[*a as usize] = true;
                    live[*b as usize] = true;
                }
            }
            TOp::BinImm { dst, a, .. } | TOp::Un { dst, a, .. } => {
                keep[i] = live[*dst as usize];
                if keep[i] {
                    live[*a as usize] = true;
                }
            }
            TOp::Slice { dst, src, .. }
            | TOp::Sext { dst, src, .. }
            | TOp::Mask { dst, src, .. } => {
                keep[i] = live[*dst as usize];
                if keep[i] {
                    live[*src as usize] = true;
                }
            }
            TOp::Jmp { .. } | TOp::JmpIfZero { .. } => unreachable!("jump-free trace"),
        }
    }
    let mut it = keep.iter();
    code.retain(|_| *it.next().expect("keep mask parallels code"));
    *removed += (before - code.len()) as u64;
}

/// Executes one fused trace against cycle-start state, staging writes
/// into `out`. Mirrors the bytecode runner exactly (same helpers, same
/// wrap/mask discipline); the per-write latency comes from the μ-op.
pub(crate) fn run_fused(f: &Fused, state: &State, out: &mut Vec<StagedWrite>, regs: &mut Vec<u64>) {
    regs.clear();
    regs.resize(f.n_regs, 0);
    let code = &f.code;
    let mut pc = 0usize;
    while pc < code.len() {
        match &code[pc] {
            TOp::Const { dst, val } => regs[*dst as usize] = *val,
            TOp::ReadSt { dst, sid } => regs[*dst as usize] = state.read_u64(*sid, 0),
            TOp::ReadIdx { dst, sid, idx, depth } => {
                let i = regs[*idx as usize] % *depth;
                regs[*dst as usize] = state.read_u64(*sid, i);
            }
            TOp::ReadFix { dst, sid, idx } => regs[*dst as usize] = state.read_u64(*sid, *idx),
            TOp::Bin { op, w, dst, a, b } => {
                regs[*dst as usize] = bin_u64(*op, *w, regs[*a as usize], regs[*b as usize]);
            }
            TOp::BinImm { op, w, dst, a, imm } => {
                regs[*dst as usize] = bin_u64(*op, *w, regs[*a as usize], *imm);
            }
            TOp::Un { op, w, dst, a } => {
                regs[*dst as usize] = un_u64(*op, *w, regs[*a as usize]);
            }
            TOp::Slice { dst, src, hi, lo } => {
                regs[*dst as usize] = (regs[*src as usize] >> lo) & mask(hi - lo + 1);
            }
            TOp::Sext { dst, src, from_w, to_w } => {
                regs[*dst as usize] = (sext64(regs[*src as usize], *from_w) as u64) & mask(*to_w);
            }
            TOp::Mask { dst, src, w } => regs[*dst as usize] = regs[*src as usize] & mask(*w),
            TOp::Cat { dst, a, b, b_width } => {
                regs[*dst as usize] = (regs[*a as usize] << b_width) | regs[*b as usize];
            }
            TOp::JmpIfZero { cond, target } => {
                if regs[*cond as usize] == 0 {
                    pc = *target;
                    continue;
                }
            }
            TOp::Jmp { target } => {
                pc = *target;
                continue;
            }
            TOp::Write { sid, idx, depth, hi, lo, src, latency } => {
                let i = match idx {
                    Some(r) => regs[*r as usize] % *depth,
                    None => 0,
                };
                push_write(out, *sid, i, *hi, *lo, regs[*src as usize], *latency);
            }
            TOp::WriteFix { sid, idx, hi, lo, src, latency } => {
                push_write(out, *sid, *idx, *hi, *lo, regs[*src as usize], *latency);
            }
        }
        pc += 1;
    }
}

#[inline]
fn push_write(
    out: &mut Vec<StagedWrite>,
    storage: StorageId,
    index: u64,
    hi: u32,
    lo: u32,
    raw: u64,
    latency: u32,
) {
    let w = hi - lo + 1;
    let value = BitVector::from_u64(raw & mask(w), w);
    out.push(StagedWrite { storage, index, hi, lo, value, latency });
}
