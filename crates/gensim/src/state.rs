//! Simulator state: the data structures that emulate the target
//! architecture's storage elements, plus state monitors and the
//! latency-delayed write-back queue.
//!
//! All accesses are routed through [`State`] so monitors (§3.2 item 3 of
//! the paper) observe every change. Writes are *staged* during a cycle
//! and committed when their latency expires, implementing the paper's
//! two-phase read/write discipline (§3.3.3).

use bitv::BitVector;
use isdl::model::{Machine, StorageKind};
use isdl::rtl::StorageId;

/// One observed state change, delivered to monitors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorEvent {
    /// Index of the monitor that fired (see [`State::add_monitor`]).
    pub monitor: usize,
    /// Cycle at which the write became visible.
    pub cycle: u64,
    /// The storage written.
    pub storage: StorageId,
    /// Cell index (0 for non-addressed storage).
    pub index: u64,
    /// Value before the write.
    pub old: BitVector,
    /// Value after the write.
    pub new: BitVector,
}

/// A watch on part of the state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Monitor {
    /// Storage to watch.
    pub storage: StorageId,
    /// Restrict to one cell (`None` watches every cell).
    pub index: Option<u64>,
    /// Only report when the value actually changes.
    pub only_changes: bool,
    /// A simulator command dispatched back to the user interface when
    /// the monitor fires (the paper's "attached commands", §3.2).
    pub command: Option<String>,
}

impl Monitor {
    /// A plain change monitor on one cell (or the whole storage).
    #[must_use]
    pub fn watch(storage: StorageId, index: Option<u64>) -> Self {
        Self { storage, index, only_changes: true, command: None }
    }
}

/// A staged write waiting for its latency to expire.
#[derive(Debug, Clone)]
struct PendingWrite {
    /// Cycle from which the value is visible.
    visible_at: u64,
    storage: StorageId,
    index: u64,
    /// Bit range written (whole-cell writes use `hi = width-1, lo = 0`).
    hi: u32,
    lo: u32,
    value: BitVector,
}

/// The complete architectural state of a simulated machine.
#[derive(Debug)]
pub struct State {
    /// `cells[s]` holds storage `s`'s cells.
    cells: Vec<Vec<BitVector>>,
    widths: Vec<u32>,
    pending: Vec<PendingWrite>,
    /// Earliest `visible_at` among `pending` (`u64::MAX` when empty):
    /// lets every commit scan early-out in O(1) on the cycles — the
    /// majority — where nothing is due yet.
    next_due: u64,
    monitors: Vec<Monitor>,
    events: Vec<MonitorEvent>,
}

impl State {
    /// Allocates zeroed state for every storage element of `machine`
    /// (§3.3.1 "State Generation").
    #[must_use]
    pub fn new(machine: &Machine) -> Self {
        let cells = machine
            .storages
            .iter()
            .map(|s| vec![BitVector::zero(s.width); s.cells() as usize])
            .collect();
        let widths = machine.storages.iter().map(|s| s.width).collect();
        Self {
            cells,
            widths,
            pending: Vec::new(),
            next_due: u64::MAX,
            monitors: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Reads one cell.
    ///
    /// # Panics
    ///
    /// Panics if the storage id is out of range. Out-of-range cell
    /// indices wrap modulo the depth (the documented address-wrap
    /// semantics).
    #[must_use]
    pub fn read(&self, storage: StorageId, index: u64) -> &BitVector {
        let cells = &self.cells[storage.0];
        &cells[(index % cells.len() as u64) as usize]
    }

    /// Reads one cell as `u64` (low bits). Fast path for the bytecode
    /// core; identical wrapping semantics to [`Self::read`].
    #[must_use]
    pub fn read_u64(&self, storage: StorageId, index: u64) -> u64 {
        self.read(storage, index).to_u64_lossy()
    }

    /// Immediately writes one whole cell, bypassing staging. Intended
    /// for test setup, program loading, and the interactive `set`
    /// command; simulation writes go through [`Self::stage_write`].
    ///
    /// # Panics
    ///
    /// Panics if the value width differs from the storage width.
    pub fn poke(&mut self, storage: StorageId, index: u64, value: BitVector) {
        assert_eq!(value.width(), self.widths[storage.0], "poke width mismatch");
        let cells = &mut self.cells[storage.0];
        let i = (index % cells.len() as u64) as usize;
        cells[i] = value;
    }

    /// Width of one cell of `storage`.
    #[must_use]
    pub fn width(&self, storage: StorageId) -> u32 {
        self.widths[storage.0]
    }

    /// Number of cells of `storage`.
    #[must_use]
    pub fn depth(&self, storage: StorageId) -> u64 {
        self.cells[storage.0].len() as u64
    }

    /// Stages a write of bits `hi..=lo` of a cell, visible from cycle
    /// `visible_at`.
    ///
    /// # Panics
    ///
    /// Panics if the bit range or value width is inconsistent.
    pub fn stage_write(
        &mut self,
        storage: StorageId,
        index: u64,
        hi: u32,
        lo: u32,
        value: BitVector,
        visible_at: u64,
    ) {
        assert!(hi >= lo && hi < self.widths[storage.0], "stage range out of bounds");
        assert_eq!(value.width(), hi - lo + 1, "staged value width mismatch");
        self.next_due = self.next_due.min(visible_at);
        self.pending.push(PendingWrite { visible_at, storage, index, hi, lo, value });
    }

    /// Whether any staged write is due at `cycle` — the O(1) guard the
    /// dispatch loops use to skip the commit scan entirely on the
    /// (majority of) cycles where nothing can land.
    #[inline]
    #[must_use]
    pub fn has_due(&self, cycle: u64) -> bool {
        cycle >= self.next_due
    }

    /// Whether any staged-but-uncommitted write targets `storage`.
    #[must_use]
    pub fn has_pending_for(&self, storage: StorageId) -> bool {
        self.pending.iter().any(|p| p.storage == storage)
    }

    /// Commits every staged write whose visibility cycle is `<= cycle`.
    /// Returns the storages touched (deduplicated) so the scheduler can
    /// react (e.g. invalidate decoded instructions on imem writes).
    ///
    /// Writes staged earlier commit first, so within one cycle the
    /// later (in field order) of two conflicting writes wins.
    pub fn commit_due(&mut self, cycle: u64) -> Vec<StorageId> {
        let mut touched = Vec::new();
        if cycle < self.next_due {
            return touched;
        }
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].visible_at <= cycle {
                let p = self.pending.remove(i);
                self.apply(&p, cycle);
                if !touched.contains(&p.storage) {
                    touched.push(p.storage);
                }
            } else {
                i += 1;
            }
        }
        self.recompute_next_due();
        touched
    }

    /// Allocation-free variant of [`Self::commit_due`] for the hot
    /// path: commits due writes and reports only whether `watch` was
    /// among the touched storages.
    pub fn commit_due_watching(&mut self, cycle: u64, watch: StorageId) -> bool {
        if cycle < self.next_due {
            return false;
        }
        let mut hit = false;
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].visible_at <= cycle {
                let p = self.pending.remove(i);
                self.apply(&p, cycle);
                hit |= p.storage == watch;
            } else {
                i += 1;
            }
        }
        self.recompute_next_due();
        hit
    }

    /// Like [`Self::commit_due_watching`], but pushes the (depth-
    /// wrapped) cell index of every committed write into `watch` onto
    /// `dirty`, so the scheduler can invalidate decode/translation
    /// caches *precisely* — only the entries a store can actually
    /// affect — instead of dropping them wholesale.
    pub fn commit_due_collecting(&mut self, cycle: u64, watch: StorageId, dirty: &mut Vec<u64>) {
        if cycle < self.next_due {
            return;
        }
        let depth = self.cells[watch.0].len() as u64;
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].visible_at <= cycle {
                let p = self.pending.remove(i);
                self.apply(&p, cycle);
                if p.storage == watch {
                    dirty.push(p.index % depth);
                }
            } else {
                i += 1;
            }
        }
        self.recompute_next_due();
    }

    fn recompute_next_due(&mut self) {
        self.next_due = self.pending.iter().map(|p| p.visible_at).min().unwrap_or(u64::MAX);
    }

    /// Discards all staged writes (used by `reset`).
    pub fn clear_pending(&mut self) {
        self.pending.clear();
        self.next_due = u64::MAX;
    }

    fn apply(&mut self, p: &PendingWrite, cycle: u64) {
        let cells = &mut self.cells[p.storage.0];
        let i = (p.index % cells.len() as u64) as usize;
        let old = cells[i].clone();
        let new = if p.lo == 0 && p.hi == old.width() - 1 {
            p.value.clone()
        } else {
            old.with_slice(p.hi, p.lo, &p.value)
        };
        let fired = self.monitors.iter().position(|m| {
            m.storage == p.storage
                && m.index.is_none_or(|ix| ix == i as u64)
                && (!m.only_changes || old != new)
        });
        if let Some(monitor) = fired {
            self.events.push(MonitorEvent {
                monitor,
                cycle,
                storage: p.storage,
                index: i as u64,
                old,
                new: new.clone(),
            });
        }
        cells[i] = new;
    }

    /// Installs a monitor; returns its handle (the index reported in
    /// [`MonitorEvent::monitor`]).
    pub fn add_monitor(&mut self, m: Monitor) -> usize {
        self.monitors.push(m);
        self.monitors.len() - 1
    }

    /// The installed monitors.
    #[must_use]
    pub fn monitors(&self) -> &[Monitor] {
        &self.monitors
    }

    /// Removes every monitor.
    pub fn clear_monitors(&mut self) {
        self.monitors.clear();
    }

    /// Drains the accumulated monitor events.
    pub fn take_events(&mut self) -> Vec<MonitorEvent> {
        std::mem::take(&mut self.events)
    }

    /// Pending (staged, uncommitted) write count — useful in tests.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Zeroes all cells, drops staged writes, keeps monitors.
    pub fn reset(&mut self) {
        for (s, cells) in self.cells.iter_mut().enumerate() {
            for c in cells.iter_mut() {
                *c = BitVector::zero(self.widths[s]);
            }
        }
        self.pending.clear();
        self.next_due = u64::MAX;
        self.events.clear();
    }
}

/// Finds the storage id of the first storage with the given kind.
#[must_use]
pub fn find_storage(machine: &Machine, kind: StorageKind) -> Option<StorageId> {
    machine.storages.iter().position(|s| s.kind == kind).map(StorageId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdl::samples::TOY;

    fn state() -> (Machine, State) {
        let m = isdl::load(TOY).expect("loads");
        let s = State::new(&m);
        (m, s)
    }

    fn rf(m: &Machine) -> StorageId {
        m.storage_by_name("RF").expect("RF exists").0
    }

    #[test]
    fn fresh_state_is_zero() {
        let (m, s) = state();
        let rf = rf(&m);
        assert!(s.read(rf, 0).is_zero());
        assert_eq!(s.width(rf), 16);
        assert_eq!(s.depth(rf), 8);
    }

    #[test]
    fn poke_and_read() {
        let (m, mut s) = state();
        let rf = rf(&m);
        s.poke(rf, 3, BitVector::from_u64(0xBEEF, 16));
        assert_eq!(s.read(rf, 3).to_u64_lossy(), 0xBEEF);
        assert_eq!(s.read_u64(rf, 3), 0xBEEF);
    }

    #[test]
    fn index_wraps_at_depth() {
        let (m, mut s) = state();
        let rf = rf(&m);
        s.poke(rf, 1, BitVector::from_u64(7, 16));
        assert_eq!(s.read(rf, 9).to_u64_lossy(), 7); // 9 % 8 == 1
    }

    #[test]
    fn staged_write_commits_at_latency() {
        let (m, mut s) = state();
        let rf = rf(&m);
        s.stage_write(rf, 2, 15, 0, BitVector::from_u64(5, 16), 3);
        assert!(s.read(rf, 2).is_zero());
        s.commit_due(2);
        assert!(s.read(rf, 2).is_zero());
        let touched = s.commit_due(3);
        assert_eq!(s.read(rf, 2).to_u64_lossy(), 5);
        assert_eq!(touched, vec![rf]);
    }

    #[test]
    fn partial_write_merges() {
        let (m, mut s) = state();
        let acc = m.storage_by_name("ACC").expect("ACC").0;
        s.poke(acc, 0, BitVector::from_u64(0xFF00, 16));
        s.stage_write(acc, 0, 7, 0, BitVector::from_u64(0xAB, 8), 1);
        s.commit_due(1);
        assert_eq!(s.read(acc, 0).to_u64_lossy(), 0xFFAB);
    }

    #[test]
    fn later_write_wins_same_cycle() {
        let (m, mut s) = state();
        let acc = m.storage_by_name("ACC").expect("ACC").0;
        s.stage_write(acc, 0, 15, 0, BitVector::from_u64(1, 16), 1);
        s.stage_write(acc, 0, 15, 0, BitVector::from_u64(2, 16), 1);
        s.commit_due(1);
        assert_eq!(s.read(acc, 0).to_u64_lossy(), 2);
    }

    #[test]
    fn monitors_capture_changes() {
        let (m, mut s) = state();
        let rf = rf(&m);
        s.add_monitor(Monitor::watch(rf, Some(1)));
        s.stage_write(rf, 1, 15, 0, BitVector::from_u64(9, 16), 1);
        s.stage_write(rf, 2, 15, 0, BitVector::from_u64(9, 16), 1); // not watched
        s.commit_due(1);
        let events = s.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].index, 1);
        assert_eq!(events[0].new.to_u64_lossy(), 9);
        assert!(s.take_events().is_empty(), "events drained");
    }

    #[test]
    fn only_changes_suppresses_identical_writes() {
        let (m, mut s) = state();
        let rf = rf(&m);
        s.add_monitor(Monitor::watch(rf, None));
        s.stage_write(rf, 0, 15, 0, BitVector::zero(16), 1);
        s.commit_due(1);
        assert!(s.take_events().is_empty());
        s.clear_monitors();
        s.add_monitor(Monitor { storage: rf, index: None, only_changes: false, command: None });
        s.stage_write(rf, 0, 15, 0, BitVector::zero(16), 2);
        s.commit_due(2);
        assert_eq!(s.take_events().len(), 1);
    }

    #[test]
    fn reset_clears_state_and_pending() {
        let (m, mut s) = state();
        let rf = rf(&m);
        s.poke(rf, 0, BitVector::from_u64(1, 16));
        s.stage_write(rf, 1, 15, 0, BitVector::from_u64(2, 16), 5);
        s.reset();
        assert!(s.read(rf, 0).is_zero());
        assert_eq!(s.pending_count(), 0);
    }

    #[test]
    fn find_storage_by_kind() {
        let (m, _) = state();
        assert!(find_storage(&m, StorageKind::ProgramCounter).is_some());
        assert!(find_storage(&m, StorageKind::Stack).is_none());
    }
}
