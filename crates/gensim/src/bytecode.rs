//! The compiled processing core.
//!
//! GENSIM emits the processing core as C source compiled into the
//! simulator binary (§3.3.3). The Rust analogue: RTL is compiled once
//! per (operation, non-terminal-option choice) into a flat register
//! bytecode over `u64` lanes, then executed by a tight loop — no tree
//! walking, no `BitVector` allocation on the hot path.
//!
//! Operations whose RTL involves values wider than 64 bits fall back to
//! the tree-walking core transparently; results are bit-identical by
//! construction (and cross-checked in the test suite).

use crate::exec::{self, Binding, Frame, OverlayView, StagedWrite};
use crate::state::State;
use bitv::BitVector;
use isdl::model::{Machine, OpRef};
use isdl::opt::{OptStats, Pipeline};
use isdl::rtl::{BinOp, ExtKind, RExpr, RExprKind, RLvalue, RStmt, StorageId, UnOp};
use std::collections::HashMap;
use std::rc::Rc;

/// Cache of compiled operation phases, plus the per-(operation, phase)
/// optimized RTL both cores consume. Optimization is independent of
/// the non-terminal option path (parameters are opaque to the
/// middle-end), so optimized statements are cached at (op, phase)
/// granularity and shared by every option-path compilation and by the
/// tree-walking core.
#[derive(Debug, Default)]
pub(crate) struct Cache {
    map: HashMap<Key, Rc<Compiled>>,
    opt: HashMap<(OpRef, Phase), Rc<Vec<RStmt>>>,
}

#[derive(Debug, PartialEq, Eq, Hash, Clone)]
struct Key {
    op: OpRef,
    phase: Phase,
    /// Non-terminal option choices, flattened in traversal order.
    options: Vec<usize>,
}

#[derive(Debug, PartialEq, Eq, Hash, Clone, Copy)]
pub(crate) enum Phase {
    Action,
    SideEffects,
}

/// A parameter slot tree mirroring the bindings, mapping token leaves
/// to flattened runtime slots.
#[derive(Debug, Clone)]
enum PSlot {
    Token(u16),
    Nt { nt: usize, option: usize, args: Vec<PSlot> },
}

#[derive(Debug)]
pub(crate) enum Compiled {
    /// Flat bytecode over u64 lanes.
    Code(Program),
    /// RTL too wide for u64 lanes — interpret the tree instead. The
    /// carried statements are the *optimized* RTL, so the fallback
    /// path benefits from the middle-end too.
    Wide(Rc<Vec<RStmt>>),
}

#[derive(Debug)]
pub(crate) struct Program {
    pub(crate) code: Vec<BOp>,
    pub(crate) n_regs: usize,
}

pub(crate) type Reg = u16;

#[derive(Debug, Clone)]
pub(crate) enum BOp {
    Const {
        dst: Reg,
        val: u64,
    },
    ReadParam {
        dst: Reg,
        slot: u16,
    },
    ReadSt {
        dst: Reg,
        sid: StorageId,
    },
    ReadIdx {
        dst: Reg,
        sid: StorageId,
        idx: Reg,
        depth: u64,
    },
    Bin {
        op: BinOp,
        w: u32,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Un {
        op: UnOp,
        w: u32,
        dst: Reg,
        a: Reg,
    },
    Slice {
        dst: Reg,
        src: Reg,
        hi: u32,
        lo: u32,
    },
    Sext {
        dst: Reg,
        src: Reg,
        from_w: u32,
        to_w: u32,
    },
    /// Zext and trunc are pure masks on u64 lanes.
    Mask {
        dst: Reg,
        src: Reg,
        w: u32,
    },
    /// `dst = (a << b_width) | b` — lowered concat.
    Cat {
        dst: Reg,
        a: Reg,
        b: Reg,
        b_width: u32,
    },
    JmpIfZero {
        cond: Reg,
        target: usize,
    },
    Jmp {
        target: usize,
    },
    Write {
        sid: StorageId,
        idx: Option<Reg>,
        depth: u64,
        hi: u32,
        lo: u32,
        src: Reg,
    },
}

impl Cache {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Looks up (or computes) the optimized RTL for one phase of
    /// `op_ref`. Middle-end statistics accumulate into `stats` on the
    /// first (and only) optimization of each phase.
    pub(crate) fn optimized(
        &mut self,
        machine: &Machine,
        op_ref: OpRef,
        phase: Phase,
        pipeline: &Pipeline,
        stats: &mut OptStats,
    ) -> Rc<Vec<RStmt>> {
        if let Some(s) = self.opt.get(&(op_ref, phase)) {
            return Rc::clone(s);
        }
        let op = machine.op(op_ref);
        let raw = match phase {
            Phase::Action => &op.action,
            Phase::SideEffects => &op.side_effects,
        };
        let stmts = if pipeline.is_identity() {
            // Skip the pipeline entirely so an empty schedule
            // (`--opt=0`) is a true baseline (stats stay zero).
            Rc::new(raw.clone())
        } else {
            Rc::new(pipeline.run(raw, stats))
        };
        self.opt.insert((op_ref, phase), Rc::clone(&stmts));
        stmts
    }

    /// Looks up (or compiles) the given phase of `op_ref` for the
    /// non-terminal option choices of `bindings`. The result is cached
    /// and shared, so per-instruction preparation is one hash lookup.
    pub(crate) fn prepare(
        &mut self,
        machine: &Machine,
        op_ref: OpRef,
        phase: Phase,
        bindings: &[Binding],
        pipeline: &Pipeline,
        stats: &mut OptStats,
    ) -> Rc<Compiled> {
        let key = Key { op: op_ref, phase, options: option_path(bindings) };
        if let Some(c) = self.map.get(&key) {
            return Rc::clone(c);
        }
        let stmts = self.optimized(machine, op_ref, phase, pipeline, stats);
        let c = Rc::new(compile(machine, &stmts, bindings));
        self.map.insert(key, Rc::clone(&c));
        c
    }
}

/// Token leaf values of a binding tree, flattened for the prepared
/// plans.
pub(crate) fn flatten_params(bindings: &[Binding]) -> Vec<u64> {
    flatten_tokens(bindings)
}

/// Executes a prepared phase. `regs` is caller-owned scratch reused
/// across invocations (sized on demand). The tree-walking fallback for
/// wide RTL runs the optimized statements carried by [`Compiled::Wide`]
/// with `op`/`bindings` and can surface its [`ExecError`] diagnostics;
/// the compiled path is infallible by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_compiled(
    compiled: &Compiled,
    machine: &Machine,
    op: &isdl::model::Operation,
    bindings: &[Binding],
    params: &[u64],
    state: &State,
    overlay: &[StagedWrite],
    latency: u32,
    out: &mut Vec<StagedWrite>,
    regs: &mut Vec<u64>,
) -> Result<(), exec::ExecError> {
    match compiled {
        Compiled::Wide(stmts) => {
            let frame = Frame { op, bindings };
            if overlay.is_empty() {
                exec::exec_stmts(machine, stmts, frame, state, latency, out)?;
            } else {
                let view = OverlayView::new(state, overlay);
                exec::exec_stmts(machine, stmts, frame, &view, latency, out)?;
            }
        }
        Compiled::Code(p) => {
            run(p, params, state, overlay, latency, out, regs);
        }
    }
    Ok(())
}

/// Flattened non-terminal option choices (the compile key).
fn option_path(bindings: &[Binding]) -> Vec<usize> {
    let mut out = Vec::new();
    fn go(b: &Binding, out: &mut Vec<usize>) {
        if let Binding::Nt { option, args, .. } = b {
            out.push(*option);
            for a in args {
                go(a, out);
            }
        }
    }
    for b in bindings {
        go(b, &mut out);
    }
    out
}

/// Token leaf values in traversal order, as u64.
fn flatten_tokens(bindings: &[Binding]) -> Vec<u64> {
    let mut out = Vec::new();
    fn go(b: &Binding, out: &mut Vec<u64>) {
        match b {
            Binding::Token(v) => out.push(v.to_u64_lossy()),
            Binding::Nt { args, .. } => {
                for a in args {
                    go(a, out);
                }
            }
        }
    }
    for b in bindings {
        go(b, &mut out);
    }
    out
}

fn build_slots(bindings: &[Binding], next: &mut u16) -> Vec<PSlot> {
    bindings
        .iter()
        .map(|b| match b {
            Binding::Token(_) => {
                let s = PSlot::Token(*next);
                *next += 1;
                s
            }
            Binding::Nt { nt, option, args } => {
                PSlot::Nt { nt: *nt, option: *option, args: build_slots(args, next) }
            }
        })
        .collect()
}

// ---------- compilation ----------

struct Compiler<'m> {
    machine: &'m Machine,
    code: Vec<BOp>,
    next_reg: Reg,
    /// Registers holding optimizer `Let` temporaries.
    tmps: HashMap<usize, Reg>,
}

struct WideRtl;

fn compile(machine: &Machine, stmts: &Rc<Vec<RStmt>>, bindings: &[Binding]) -> Compiled {
    let mut next = 0u16;
    let slots = build_slots(bindings, &mut next);
    let mut c = Compiler { machine, code: Vec::new(), next_reg: 0, tmps: HashMap::new() };
    match c.compile_stmts(stmts, &slots) {
        Ok(()) => Compiled::Code(Program { code: c.code, n_regs: c.next_reg as usize }),
        Err(WideRtl) => Compiled::Wide(Rc::clone(stmts)),
    }
}

impl Compiler<'_> {
    fn fresh(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn compile_stmts(&mut self, stmts: &[RStmt], slots: &[PSlot]) -> Result<(), WideRtl> {
        for s in stmts {
            self.compile_stmt(s, slots)?;
        }
        Ok(())
    }

    fn compile_stmt(&mut self, s: &RStmt, slots: &[PSlot]) -> Result<(), WideRtl> {
        match s {
            RStmt::Assign { lv, rhs } => {
                let src = self.compile_expr(rhs, slots)?;
                let (sid, idx, hi, lo) = self.compile_lvalue(lv, slots)?;
                let depth = self.machine.storage(sid).cells();
                self.code.push(BOp::Write { sid, idx, depth, hi, lo, src });
                Ok(())
            }
            RStmt::If { cond, then_body, else_body } => {
                let c = self.compile_expr(cond, slots)?;
                let jz_at = self.code.len();
                self.code.push(BOp::JmpIfZero { cond: c, target: usize::MAX });
                self.compile_stmts(then_body, slots)?;
                if else_body.is_empty() {
                    let end = self.code.len();
                    self.patch(jz_at, end);
                } else {
                    let jmp_at = self.code.len();
                    self.code.push(BOp::Jmp { target: usize::MAX });
                    let else_start = self.code.len();
                    self.patch(jz_at, else_start);
                    self.compile_stmts(else_body, slots)?;
                    let end = self.code.len();
                    self.patch(jmp_at, end);
                }
                Ok(())
            }
            RStmt::Let { tmp, rhs } => {
                let r = self.compile_expr(rhs, slots)?;
                self.tmps.insert(*tmp, r);
                Ok(())
            }
        }
    }

    fn patch(&mut self, at: usize, target: usize) {
        match &mut self.code[at] {
            BOp::JmpIfZero { target: t, .. } | BOp::Jmp { target: t } => *t = target,
            _ => unreachable!("patched instruction is a jump"),
        }
    }

    fn compile_lvalue(
        &mut self,
        lv: &RLvalue,
        slots: &[PSlot],
    ) -> Result<(StorageId, Option<Reg>, u32, u32), WideRtl> {
        match lv {
            RLvalue::Storage(id) => {
                let w = self.machine.storage(*id).width;
                if w > 64 {
                    return Err(WideRtl);
                }
                Ok((*id, None, w - 1, 0))
            }
            RLvalue::StorageIndexed(id, idx) => {
                let w = self.machine.storage(*id).width;
                if w > 64 {
                    return Err(WideRtl);
                }
                let r = self.compile_expr(idx, slots)?;
                Ok((*id, Some(r), w - 1, 0))
            }
            RLvalue::Slice { base, hi, lo } => {
                let (sid, idx, _bhi, blo) = self.compile_lvalue(base, slots)?;
                Ok((sid, idx, blo + hi, blo + lo))
            }
            RLvalue::Param(p) => {
                let PSlot::Nt { nt, option, args } = &slots[*p] else {
                    unreachable!("sema guarantees destination params are non-terminals")
                };
                // `machine` is a shared reference independent of the
                // `&mut self` borrow, so the option outlives the call.
                let machine = self.machine;
                let opt = &machine.nonterminals[*nt].options[*option];
                let inner =
                    opt.value_lvalue.as_ref().expect("sema checked the option is assignable");
                let args = args.clone();
                self.compile_lvalue(inner, &args)
            }
        }
    }

    fn compile_expr(&mut self, e: &RExpr, slots: &[PSlot]) -> Result<Reg, WideRtl> {
        if e.width > 64 {
            return Err(WideRtl);
        }
        match &e.kind {
            RExprKind::Lit(v) => {
                let dst = self.fresh();
                let val = v.to_u64().ok_or(WideRtl)?;
                self.code.push(BOp::Const { dst, val });
                Ok(dst)
            }
            RExprKind::Storage(id) => {
                if self.machine.storage(*id).width > 64 {
                    return Err(WideRtl);
                }
                let dst = self.fresh();
                self.code.push(BOp::ReadSt { dst, sid: *id });
                Ok(dst)
            }
            RExprKind::StorageIndexed(id, idx) => {
                if self.machine.storage(*id).width > 64 {
                    return Err(WideRtl);
                }
                let r = self.compile_expr(idx, slots)?;
                let dst = self.fresh();
                let depth = self.machine.storage(*id).cells();
                self.code.push(BOp::ReadIdx { dst, sid: *id, idx: r, depth });
                Ok(dst)
            }
            RExprKind::Param(p) => match &slots[*p] {
                PSlot::Token(slot) => {
                    let dst = self.fresh();
                    self.code.push(BOp::ReadParam { dst, slot: *slot });
                    Ok(dst)
                }
                PSlot::Nt { nt, option, args } => {
                    let machine = self.machine;
                    let opt = &machine.nonterminals[*nt].options[*option];
                    let value = opt.value.as_ref().expect("sema checked value exists");
                    let args = args.clone();
                    self.compile_expr(value, &args)
                }
            },
            RExprKind::Slice(inner, hi, lo) => {
                let src = self.compile_expr(inner, slots)?;
                let dst = self.fresh();
                self.code.push(BOp::Slice { dst, src, hi: *hi, lo: *lo });
                Ok(dst)
            }
            RExprKind::Unary(u, inner) => {
                let a = self.compile_expr(inner, slots)?;
                let dst = self.fresh();
                let w = match u {
                    UnOp::LNot => inner.width,
                    _ => e.width,
                };
                self.code.push(BOp::Un { op: *u, w, dst, a });
                Ok(dst)
            }
            RExprKind::Binary(b, x, y) => {
                let a = self.compile_expr(x, slots)?;
                let bb = self.compile_expr(y, slots)?;
                let dst = self.fresh();
                // Comparisons need the operand width, not the 1-bit
                // result width. Signed div/rem likewise: sign extension
                // must come from the operand's declared ISDL width — a
                // node whose annotated width differs from its operands'
                // would otherwise sign-extend from the wrong bit and
                // corrupt negative quotients.
                let w = match b {
                    BinOp::Eq
                    | BinOp::Ne
                    | BinOp::Ult
                    | BinOp::Ule
                    | BinOp::Slt
                    | BinOp::Sle
                    | BinOp::SDiv
                    | BinOp::SRem => x.width,
                    _ => e.width,
                };
                self.code.push(BOp::Bin { op: *b, w, dst, a, b: bb });
                Ok(dst)
            }
            RExprKind::Cond(c, t, f) => {
                // Lower to control flow so only one arm evaluates
                // (matching the tree core exactly).
                let cr = self.compile_expr(c, slots)?;
                let dst = self.fresh();
                let jz_at = self.code.len();
                self.code.push(BOp::JmpIfZero { cond: cr, target: usize::MAX });
                let tv = self.compile_expr(t, slots)?;
                self.code.push(BOp::Mask { dst, src: tv, w: e.width });
                let jmp_at = self.code.len();
                self.code.push(BOp::Jmp { target: usize::MAX });
                let else_start = self.code.len();
                self.patch(jz_at, else_start);
                let fv = self.compile_expr(f, slots)?;
                self.code.push(BOp::Mask { dst, src: fv, w: e.width });
                let end = self.code.len();
                self.patch(jmp_at, end);
                Ok(dst)
            }
            RExprKind::Ext(kind, inner) => {
                let src = self.compile_expr(inner, slots)?;
                let dst = self.fresh();
                match kind {
                    ExtKind::Sext => {
                        self.code.push(BOp::Sext { dst, src, from_w: inner.width, to_w: e.width })
                    }
                    ExtKind::Zext | ExtKind::Trunc => {
                        self.code.push(BOp::Mask { dst, src, w: e.width.min(inner.width) })
                    }
                }
                Ok(dst)
            }
            RExprKind::Concat(parts) => {
                let mut it = parts.iter();
                let first = it.next().expect("concat is non-empty");
                let mut acc = self.compile_expr(first, slots)?;
                for p in it {
                    let b = self.compile_expr(p, slots)?;
                    let dst = self.fresh();
                    self.code.push(BOp::Cat { dst, a: acc, b, b_width: p.width });
                    acc = dst;
                }
                Ok(acc)
            }
            RExprKind::Tmp(t) => {
                // The optimizer emits the `Let` before every use, so
                // the register is already populated.
                Ok(*self.tmps.get(t).expect("optimizer binds temporaries before use"))
            }
        }
    }
}

// ---------- execution ----------

#[inline]
pub(crate) fn mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

#[inline]
pub(crate) fn sext64(v: u64, w: u32) -> i64 {
    if w >= 64 {
        v as i64
    } else {
        ((v << (64 - w)) as i64) >> (64 - w)
    }
}

fn read_cell_u64(state: &State, overlay: &[StagedWrite], sid: StorageId, idx: u64) -> u64 {
    let mut v = state.read_u64(sid, idx);
    for w in overlay {
        if w.storage == sid && w.index == idx {
            let m = mask(w.hi - w.lo + 1);
            let val = w.value.to_u64_lossy() & m;
            v = (v & !(m << w.lo)) | (val << w.lo);
        }
    }
    v
}

fn run(
    p: &Program,
    params: &[u64],
    state: &State,
    overlay: &[StagedWrite],
    latency: u32,
    out: &mut Vec<StagedWrite>,
    regs: &mut Vec<u64>,
) {
    regs.clear();
    regs.resize(p.n_regs, 0);
    let mut pc = 0usize;
    while pc < p.code.len() {
        match &p.code[pc] {
            BOp::Const { dst, val } => regs[*dst as usize] = *val,
            BOp::ReadParam { dst, slot } => regs[*dst as usize] = params[*slot as usize],
            BOp::ReadSt { dst, sid } => {
                regs[*dst as usize] = read_cell_u64(state, overlay, *sid, 0);
            }
            BOp::ReadIdx { dst, sid, idx, depth } => {
                let i = regs[*idx as usize] % *depth;
                regs[*dst as usize] = read_cell_u64(state, overlay, *sid, i);
            }
            BOp::Bin { op, w, dst, a, b } => {
                regs[*dst as usize] = bin_u64(*op, *w, regs[*a as usize], regs[*b as usize]);
            }
            BOp::Un { op, w, dst, a } => {
                let v = regs[*a as usize];
                regs[*dst as usize] = match op {
                    UnOp::Neg => v.wrapping_neg() & mask(*w),
                    UnOp::Not => !v & mask(*w),
                    UnOp::LNot => u64::from(v == 0),
                };
            }
            BOp::Slice { dst, src, hi, lo } => {
                regs[*dst as usize] = (regs[*src as usize] >> lo) & mask(hi - lo + 1);
            }
            BOp::Sext { dst, src, from_w, to_w } => {
                regs[*dst as usize] = (sext64(regs[*src as usize], *from_w) as u64) & mask(*to_w);
            }
            BOp::Mask { dst, src, w } => {
                regs[*dst as usize] = regs[*src as usize] & mask(*w);
            }
            BOp::Cat { dst, a, b, b_width } => {
                regs[*dst as usize] = (regs[*a as usize] << b_width) | regs[*b as usize];
            }
            BOp::JmpIfZero { cond, target } => {
                if regs[*cond as usize] == 0 {
                    pc = *target;
                    continue;
                }
            }
            BOp::Jmp { target } => {
                pc = *target;
                continue;
            }
            BOp::Write { sid, idx, depth, hi, lo, src } => {
                let i = match idx {
                    Some(r) => regs[*r as usize] % *depth,
                    None => 0,
                };
                let w = hi - lo + 1;
                let value = BitVector::from_u64(regs[*src as usize] & mask(w), w);
                out.push(StagedWrite { storage: *sid, index: i, hi: *hi, lo: *lo, value, latency });
            }
        }
        pc += 1;
    }
}

// The division arms implement the hardware div-by-zero convention
// (quotient all-ones, remainder = dividend), not an error path, so
// `checked_div` would obscure intent.
#[allow(clippy::manual_checked_ops)]
pub(crate) fn bin_u64(op: BinOp, w: u32, a: u64, b: u64) -> u64 {
    let m = mask(w);
    match op {
        BinOp::Add => a.wrapping_add(b) & m,
        BinOp::Sub => a.wrapping_sub(b) & m,
        BinOp::Mul => a.wrapping_mul(b) & m,
        BinOp::UDiv => {
            if b == 0 {
                m
            } else {
                (a / b) & m
            }
        }
        BinOp::URem => {
            if b == 0 {
                a
            } else {
                (a % b) & m
            }
        }
        BinOp::SDiv => {
            if b == 0 {
                m
            } else {
                let (x, y) = (sext64(a, w), sext64(b, w));
                (x.wrapping_div(y) as u64) & m
            }
        }
        BinOp::SRem => {
            if b == 0 {
                a
            } else {
                let (x, y) = (sext64(a, w), sext64(b, w));
                (x.wrapping_rem(y) as u64) & m
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= u64::from(w) {
                0
            } else {
                (a << b) & m
            }
        }
        BinOp::Lshr => {
            if b >= u64::from(w) {
                0
            } else {
                a >> b
            }
        }
        BinOp::Ashr => {
            if b >= u64::from(w) {
                if sext64(a, w) < 0 {
                    m
                } else {
                    0
                }
            } else {
                (sext64(a, w) >> b) as u64 & m
            }
        }
        BinOp::Eq => u64::from(a == b),
        BinOp::Ne => u64::from(a != b),
        BinOp::Ult => u64::from(a < b),
        BinOp::Ule => u64::from(a <= b),
        BinOp::Slt => u64::from(sext64(a, w) < sext64(b, w)),
        BinOp::Sle => u64::from(sext64(a, w) <= sext64(b, w)),
        BinOp::LAnd => u64::from(a != 0 && b != 0),
        BinOp::LOr => u64::from(a != 0 || b != 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_and_sext_helpers() {
        assert_eq!(mask(8), 0xFF);
        assert_eq!(mask(64), u64::MAX);
        assert_eq!(sext64(0x80, 8), -128);
        assert_eq!(sext64(0x7F, 8), 127);
    }

    #[test]
    fn bin_u64_matches_bitvector_semantics() {
        use isdl::rtl::BinOp::*;
        for w in [1u32, 5, 8, 16, 31, 32, 63, 64] {
            // Operands must fit the lane width, as they do in real
            // execution (every producer masks its result).
            // `(mask >> 1) + 1` is the signed minimum (MIN), so the
            // MIN / -1 overflow convention of SDiv/SRem is covered.
            let samples: Vec<u64> = vec![
                0,
                1 & mask(w),
                2 & mask(w),
                3 & mask(w),
                mask(w),
                mask(w) >> 1,
                (mask(w) >> 1) + 1,
                0xAB & mask(w),
            ];
            for &a in &samples {
                for &b in &samples {
                    for op in [
                        Add, Sub, Mul, UDiv, URem, SDiv, SRem, And, Or, Xor, Eq, Ne, Ult, Ule, Slt,
                        Sle, LAnd, LOr,
                    ] {
                        let x = BitVector::from_u64(a, w);
                        let y = BitVector::from_u64(b, w);
                        let expect = crate::exec::eval_binop(op, &x, &y).to_u64_lossy();
                        let got = bin_u64(op, w, a, b);
                        assert_eq!(got, expect, "op {op:?} w {w} a {a:#x} b {b:#x}");
                    }
                    // Shifts use b as an amount.
                    for op in [Shl, Lshr, Ashr] {
                        let x = BitVector::from_u64(a, w);
                        let y = BitVector::from_u64(b, w);
                        let expect = crate::exec::eval_binop(op, &x, &y).to_u64_lossy();
                        let got = bin_u64(op, w, a, b & mask(w));
                        assert_eq!(got, expect, "op {op:?} w {w} a {a:#x} b {b:#x}");
                    }
                }
            }
        }
    }
}
