//! Static stall computation (§3.3.3).
//!
//! ISDL has no explicit pipeline model, so XSIM derives stall cycles
//! from the *static* instruction stream: a producer with latency *L*
//! whose result a nearby consumer reads too early charges the consumer
//! the missing cycles, clamped to the producer's declared `Stall` cost;
//! the `Usage` parameter similarly serialises back-to-back uses of one
//! field (functional unit).
//!
//! Gaps are measured in no-stall cycles along the layout order — the
//! same approximation the paper's static scheme implies (branches are
//! not followed).
//!
//! Since the profiler landed, the pass also *attributes* each stall:
//! the returned [`StallCause`] names the storage (or functional unit)
//! the consumer waited on and the address of the producing instruction,
//! which the `xsim-profile/1` report surfaces per stalled PC.

use crate::exec::Binding;
use crate::sched::{DecodedEntry, StallCause};
use isdl::model::{Machine, Operation, StorageKind};
use isdl::rtl::{RExpr, RExprKind, RLvalue, RStmt, StorageId};

/// A state cell touched by an operation: a specific cell when the index
/// is statically known, or the whole storage otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Cell {
    pub(crate) storage: StorageId,
    /// `None` = dynamic index: conflicts with every cell.
    pub(crate) index: Option<u64>,
}

impl Cell {
    fn conflicts(&self, other: &Cell) -> bool {
        self.storage == other.storage
            && match (self.index, other.index) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }
    }
}

#[derive(Debug, Clone)]
struct Producer {
    cell: Cell,
    /// Cycle position (no-stall) just after the producing instruction.
    pos: u64,
    latency: u32,
    clamp: u32,
    /// Address of the producing instruction (for attribution).
    addr: u64,
}

#[derive(Debug, Default)]
pub(crate) struct Access {
    pub(crate) reads: Vec<Cell>,
    pub(crate) writes: Vec<Cell>,
}

/// Computes the static stall for every decoded instruction. Returns
/// `(address, stall, cause)` triples for instructions that need one;
/// the cause names the storage or unit waited on and the producer PC
/// that charged the worst (binding) stall.
pub(crate) fn compute_static_stalls(
    machine: &Machine,
    decoded: &[Option<DecodedEntry>],
) -> Vec<(u64, u32, StallCause)> {
    let mut out = Vec::new();
    let mut producers: Vec<Producer> = Vec::new();
    // Per field: (position after last non-nop use, usage, clamp, addr).
    let mut field_use: Vec<Option<(u64, u32, u32, u64)>> = vec![None; machine.fields.len()];
    let mut pos: u64 = 0;

    let entries = decoded.iter().enumerate().filter_map(|(a, e)| e.as_ref().map(|e| (a as u64, e)));
    for (addr, entry) in entries {
        // Worst (binding) stall so far, with its cause. Ties keep the
        // first cause found so attribution is deterministic.
        let mut worst: Option<(u32, StallCause)> = None;
        // Gather this instruction's accesses across all fields.
        let mut access = Access::default();
        for (d, b) in entry.instr.ops.iter().zip(&entry.bindings) {
            collect_op_access(machine, machine.op(d.op), b, &mut access);
        }
        // Data hazards.
        for r in &access.reads {
            for p in &producers {
                if p.cell.conflicts(r) {
                    let ready = p.pos - 1 + u64::from(p.latency); // visible from this cycle
                    if ready > pos {
                        let need = u32::try_from(ready - pos).unwrap_or(u32::MAX);
                        let charged = need.min(p.clamp);
                        if worst.map_or(charged > 0, |(w, _)| charged > w) {
                            worst = Some((
                                charged,
                                StallCause::Data { storage: p.cell.storage, producer_pc: p.addr },
                            ));
                        }
                    }
                }
            }
        }
        // Structural (usage) hazards.
        for (fi, d) in entry.instr.ops.iter().enumerate() {
            let op = machine.op(d.op);
            if Some(d.op.op) == machine.fields[fi].nop {
                continue;
            }
            if let Some((last_pos, usage, clamp, last_addr)) = field_use[fi] {
                let free = last_pos - 1 + u64::from(usage);
                if free > pos {
                    let need = u32::try_from(free - pos).unwrap_or(u32::MAX);
                    let charged = need.min(clamp);
                    if worst.map_or(charged > 0, |(w, _)| charged > w) {
                        worst = Some((
                            charged,
                            StallCause::Usage { field: fi, producer_pc: last_addr },
                        ));
                    }
                }
            }
            field_use[fi] = Some((pos + 1, op.timing.usage, op.costs.stall, addr));
        }
        if let Some((stall, cause)) = worst {
            out.push((addr, stall, cause));
        }
        // Record this instruction's writes as producers.
        let write_pos = pos + 1;
        for (d, _) in entry.instr.ops.iter().zip(&entry.bindings) {
            let op = machine.op(d.op);
            if op.timing.latency > 1 {
                for w in &access.writes {
                    // Only writes performed by ops with latency > 1
                    // matter; attribute conservatively per op.
                    producers.push(Producer {
                        cell: *w,
                        pos: write_pos,
                        latency: op.timing.latency,
                        clamp: op.costs.stall,
                        addr,
                    });
                }
                break;
            }
        }
        pos += u64::from(entry.cycle_cost);
        // Old producers whose results are long visible can be dropped.
        producers.retain(|p| p.pos - 1 + u64::from(p.latency) > pos);
    }
    out
}

/// Collects the cells an operation reads and writes, inlining
/// non-terminal option values per the decoded bindings.
pub(crate) fn collect_op_access(
    machine: &Machine,
    op: &Operation,
    bindings: &[Binding],
    out: &mut Access,
) {
    for s in op.action.iter().chain(&op.side_effects) {
        collect_stmt(machine, s, op, bindings, out);
    }
}

#[allow(clippy::only_used_in_recursion)]
fn collect_stmt(
    machine: &Machine,
    s: &RStmt,
    op: &Operation,
    bindings: &[Binding],
    out: &mut Access,
) {
    match s {
        RStmt::Assign { lv, rhs } => {
            collect_expr_reads(machine, rhs, op, bindings, out);
            collect_lvalue(machine, lv, op, bindings, out);
        }
        RStmt::If { cond, then_body, else_body } => {
            collect_expr_reads(machine, cond, op, bindings, out);
            for s in then_body.iter().chain(else_body) {
                collect_stmt(machine, s, op, bindings, out);
            }
        }
        RStmt::Let { rhs, .. } => {
            collect_expr_reads(machine, rhs, op, bindings, out);
        }
    }
}

/// Collects every storage an operation's action or side effects may
/// write, *unfiltered* — unlike the hazard scan above this includes the
/// program counter and instruction memory, because the translation
/// layer needs to know whether an instruction can redirect control or
/// self-modify (both end a basic block). Conservative by construction:
/// writes under an `If` count whether or not the branch is taken.
pub(crate) fn collect_raw_writes(
    machine: &Machine,
    op: &Operation,
    bindings: &[Binding],
    out: &mut Vec<StorageId>,
) {
    fn lvalue(machine: &Machine, lv: &RLvalue, bindings: &[Binding], out: &mut Vec<StorageId>) {
        match lv {
            RLvalue::Storage(id) | RLvalue::StorageIndexed(id, _) => out.push(*id),
            RLvalue::Slice { base, .. } => lvalue(machine, base, bindings, out),
            RLvalue::Param(p) => {
                if let Binding::Nt { nt, option, args } = &bindings[*p] {
                    let opt = &machine.nonterminals[*nt].options[*option];
                    if let Some(inner) = &opt.value_lvalue {
                        lvalue(machine, inner, args, out);
                    }
                }
            }
        }
    }
    fn stmt(machine: &Machine, s: &RStmt, bindings: &[Binding], out: &mut Vec<StorageId>) {
        match s {
            RStmt::Assign { lv, .. } => lvalue(machine, lv, bindings, out),
            RStmt::If { then_body, else_body, .. } => {
                for s in then_body.iter().chain(else_body) {
                    stmt(machine, s, bindings, out);
                }
            }
            RStmt::Let { .. } => {}
        }
    }
    for s in op.action.iter().chain(&op.side_effects) {
        stmt(machine, s, bindings, out);
    }
}

fn hazard_relevant(machine: &Machine, id: StorageId) -> bool {
    !matches!(
        machine.storage(id).kind,
        StorageKind::ProgramCounter | StorageKind::InstructionMemory
    )
}

fn collect_lvalue(
    machine: &Machine,
    lv: &RLvalue,
    op: &Operation,
    bindings: &[Binding],
    out: &mut Access,
) {
    match lv {
        RLvalue::Storage(id) => {
            if hazard_relevant(machine, *id) {
                out.writes.push(Cell { storage: *id, index: Some(0) });
            }
        }
        RLvalue::StorageIndexed(id, idx) => {
            collect_expr_reads(machine, idx, op, bindings, out);
            if hazard_relevant(machine, *id) {
                let index = const_eval(idx, bindings).map(|v| v % machine.storage(*id).cells());
                out.writes.push(Cell { storage: *id, index });
            }
        }
        RLvalue::Slice { base, .. } => collect_lvalue(machine, base, op, bindings, out),
        RLvalue::Param(p) => {
            if let Binding::Nt { nt, option, args } = &bindings[*p] {
                let opt = &machine.nonterminals[*nt].options[*option];
                if let Some(inner) = &opt.value_lvalue {
                    collect_lvalue(machine, inner, opt, args, out);
                }
            }
        }
    }
}

#[allow(clippy::only_used_in_recursion)]
fn collect_expr_reads(
    machine: &Machine,
    e: &RExpr,
    op: &Operation,
    bindings: &[Binding],
    out: &mut Access,
) {
    match &e.kind {
        RExprKind::Storage(id) => {
            if hazard_relevant(machine, *id) {
                out.reads.push(Cell { storage: *id, index: Some(0) });
            }
        }
        RExprKind::StorageIndexed(id, idx) => {
            collect_expr_reads(machine, idx, op, bindings, out);
            if hazard_relevant(machine, *id) {
                let index = const_eval(idx, bindings).map(|v| v % machine.storage(*id).cells());
                out.reads.push(Cell { storage: *id, index });
            }
        }
        RExprKind::Param(p) => {
            if let Binding::Nt { nt, option, args } = &bindings[*p] {
                let opt = &machine.nonterminals[*nt].options[*option];
                if let Some(value) = &opt.value {
                    collect_expr_reads(machine, value, opt, args, out);
                }
            }
        }
        _ => {
            for c in e.children() {
                collect_expr_reads(machine, c, op, bindings, out);
            }
        }
    }
}

/// Evaluates an index expression if it depends only on literals and
/// token parameters (which are constants of the decoded instruction).
fn const_eval(e: &RExpr, bindings: &[Binding]) -> Option<u64> {
    use crate::exec::eval_binop;
    use bitv::BitVector;
    fn go(e: &RExpr, bindings: &[Binding]) -> Option<BitVector> {
        match &e.kind {
            RExprKind::Lit(v) => Some(v.clone()),
            RExprKind::Param(p) => match &bindings[*p] {
                Binding::Token(v) => Some(v.clone()),
                Binding::Nt { .. } => None,
            },
            RExprKind::Slice(inner, hi, lo) => Some(go(inner, bindings)?.slice(*hi, *lo)),
            RExprKind::Ext(kind, inner) => {
                let v = go(inner, bindings)?;
                Some(match kind {
                    isdl::rtl::ExtKind::Zext => v.zext(e.width),
                    isdl::rtl::ExtKind::Sext => v.sext(e.width),
                    isdl::rtl::ExtKind::Trunc => v.trunc(e.width),
                })
            }
            RExprKind::Binary(op, a, b) => {
                let x = go(a, bindings)?;
                let y = go(b, bindings)?;
                Some(eval_binop(*op, &x, &y))
            }
            _ => None,
        }
    }
    go(e, bindings).map(|v| v.to_u64_lossy())
}
