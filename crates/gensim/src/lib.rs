#![warn(missing_docs)]

//! GENSIM: generates cycle-accurate, bit-true instruction-level
//! simulators (XSIM) from ISDL machine descriptions.
//!
//! This crate is the Rust reproduction of the paper's §3. Where the
//! original GENSIM emits C source that is compiled and linked against a
//! common library, [`Xsim::generate`] builds the same six components
//! (Figure 2) in memory:
//!
//! 1. **User interface & file I/O** — the batch command interpreter in
//!    [`cli`] plus the programmatic API on [`Xsim`];
//! 2. **Scheduler** — instruction sequencing, breakpoints, execution
//!    traces, attached statistics ([`sched`]);
//! 3. **State monitors** — watch hooks on any part of the state
//!    ([`state::Monitor`]);
//! 4. **State** — data structures mirroring the declared storages
//!    ([`state::State`]);
//! 5. **Disassembler** — the signature-matching decoder, run off-line
//!    over the whole program at load time (`xasm::Disassembler`);
//! 6. **Processing core** — the RTL executors: a tree-walking
//!    interpreter ([`exec`]) and a compiled bytecode core
//!    ([`CoreKind::Bytecode`], the analogue of the generated C).
//!
//! Simulators are cycle-accurate (costs, latency-delayed write-back,
//! statically derived stalls) and bit-true ([`bitv::BitVector`]
//! arithmetic throughout) *by construction*.
//!
//! # Examples
//!
//! ```
//! use gensim::{StopReason, Xsim};
//! use xasm::Assembler;
//!
//! let machine = isdl::load(isdl::samples::ACC16)?;
//! let program = Assembler::new(&machine).assemble(
//!     "ldi 7\n addm ten\n sta 0\n halt\n.data\n.org 20\nten: .word 10\n",
//! )?;
//! let mut sim = Xsim::generate(&machine)?;
//! sim.load_program(&program);
//! assert_eq!(sim.run(1_000), StopReason::Halted);
//! let dm = machine.storage_by_name("DM").expect("DM").0;
//! assert_eq!(sim.state().read(dm, 0).to_u64_lossy(), 17);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod bytecode;
pub mod cli;
pub mod exec;
mod hazard;
pub mod report;
pub mod sched;
pub mod state;
mod translate;

pub use report::{
    profile_json, publish_opt_counters, publish_translate_counters, stats_json, trace_json,
    PROFILE_SCHEMA, STATS_SCHEMA, TRACE_SCHEMA,
};
pub use sched::{
    CoreKind, EventTrace, GensimError, Profile, ProfileRow, StallCause, Stats, StopReason,
    TraceEvent, TraceWrite, Xsim, XsimOptions,
};
pub use state::{Monitor, MonitorEvent, State};
pub use translate::TranslateStats;
