//! Command-line / batch interface to an XSIM simulator (§3.1).
//!
//! The original XSIM offers both a Tcl/Tk GUI and a command-line
//! interface with full batch-file support; the GUI is presentation
//! only, so this reproduction provides the command interpreter. Each
//! line is one command; output is written to any `std::fmt::Write`.
//!
//! | command | effect |
//! |---------|--------|
//! | `step [n]` | execute `n` (default 1) instructions |
//! | `run [cycles] [fuel]` | run until a stop condition (default budget 1M cycles; `fuel` caps retired instructions, default unlimited) |
//! | `break <addr>` / `unbreak <addr>` | manage breakpoints |
//! | `x <storage>[idx]` | examine state |
//! | `set <storage>[idx] <value>` | modify state |
//! | `monitor <storage>[idx] [-- <command>]` | watch part of the state; the optional command runs whenever the monitor fires (the paper's "attached commands") |
//! | `events` | print and drain monitor events |
//! | `pc` | print the program counter |
//! | `disasm <addr>` | disassemble one instruction |
//! | `stats` | print cycle/instruction/stall counters |
//! | `stats-json` | print the `xsim-stats/1` JSON report (see `docs/OBSERVABILITY.md`) |
//! | `echo <text>` | print `text` (batch-file niceties) |
//! | `reset` | reset state and statistics |

use crate::sched::Xsim;
use crate::state::Monitor;
use bitv::BitVector;
use std::fmt::Write;

/// Executes one command against `sim`, appending output to `out`.
///
/// Returns `false` for empty/comment lines and unknown commands (which
/// also emit an error message), `true` when a command ran.
pub fn run_command(sim: &mut Xsim<'_>, line: &str, out: &mut String) -> bool {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
        return false;
    }
    let mut it = line.split_whitespace();
    let cmd = it.next().unwrap_or_default();
    let args: Vec<&str> = it.collect();
    match cmd {
        "step" => {
            let n: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(1);
            for _ in 0..n {
                if let Some(stop) = sim.step() {
                    let _ = writeln!(out, "stopped: {stop}");
                    break;
                }
            }
            let _ = writeln!(out, "pc = {:#x}", sim.pc());
            true
        }
        "run" => {
            let budget: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(1_000_000);
            let fuel: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(u64::MAX);
            let stop = sim.run_fuel(budget, fuel);
            let _ = writeln!(out, "stopped: {stop} (cycle {})", sim.stats().cycles);
            dispatch_attached_commands(sim, out);
            true
        }
        "break" | "unbreak" => {
            let Some(addr) = args.first().and_then(|a| parse_num(a)) else {
                let _ = writeln!(out, "error: {cmd} needs an address");
                return true;
            };
            if cmd == "break" {
                sim.add_breakpoint(addr);
                let _ = writeln!(out, "breakpoint at {addr:#x}");
            } else {
                sim.remove_breakpoint(addr);
                let _ = writeln!(out, "breakpoint removed at {addr:#x}");
            }
            true
        }
        "x" => match args.first().and_then(|a| parse_place(sim, a)) {
            Some((sid, idx)) => {
                let v = sim.state().read(sid, idx).clone();
                let _ = writeln!(out, "{} = {v}", args[0]);
                true
            }
            None => {
                let _ = writeln!(out, "error: cannot parse place");
                true
            }
        },
        "set" => {
            let (Some(place), Some(val)) = (args.first(), args.get(1)) else {
                let _ = writeln!(out, "error: set <place> <value>");
                return true;
            };
            let Some((sid, idx)) = parse_place(sim, place) else {
                let _ = writeln!(out, "error: cannot parse place");
                return true;
            };
            let Some(v) = parse_num(val) else {
                let _ = writeln!(out, "error: cannot parse value");
                return true;
            };
            let w = sim.state().width(sid);
            sim.state_mut().poke(sid, idx, BitVector::from_u64(v, w));
            let _ = writeln!(out, "{place} = {v:#x}");
            true
        }
        "monitor" => {
            let Some(arg) = args.first() else {
                let _ = writeln!(out, "error: monitor <place> [-- <command>]");
                return true;
            };
            // `NAME` watches the whole storage; `NAME[i]` one cell.
            let (sid, idx) = match parse_place(sim, arg) {
                Some(p) => p,
                None => {
                    let _ = writeln!(out, "error: cannot parse place");
                    return true;
                }
            };
            let index = if arg.contains('[') { Some(idx) } else { None };
            // Everything after `--` is the attached command.
            let command = args
                .iter()
                .position(|&a| a == "--")
                .map(|i| args[i + 1..].join(" "))
                .filter(|c| !c.is_empty());
            let has_command = command.is_some();
            sim.state_mut().add_monitor(Monitor {
                storage: sid,
                index,
                only_changes: true,
                command,
            });
            if has_command {
                let _ = writeln!(out, "monitoring {arg} (with attached command)");
            } else {
                let _ = writeln!(out, "monitoring {arg}");
            }
            true
        }
        "events" => {
            for e in sim.state_mut().take_events() {
                let name = &sim.machine().storages[e.storage.0].name;
                let _ =
                    writeln!(out, "cycle {}: {name}[{}] {} -> {}", e.cycle, e.index, e.old, e.new);
            }
            true
        }
        "pc" => {
            let _ = writeln!(out, "pc = {:#x}", sim.pc());
            true
        }
        "disasm" => {
            let addr = args.first().and_then(|a| parse_num(a)).unwrap_or_else(|| sim.pc());
            match sim.disassemble_at(addr) {
                Some(text) => {
                    let _ = writeln!(out, "{addr:#x}: {text}");
                }
                None => {
                    let _ = writeln!(out, "{addr:#x}: <illegal>");
                }
            }
            true
        }
        "stats" => {
            let s = sim.stats();
            let _ = writeln!(
                out,
                "cycles {} instructions {} stalls {}",
                s.cycles, s.instructions, s.stall_cycles
            );
            for (fi, field) in sim.machine().fields.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "field {} utilization {:.1}%",
                    field.name,
                    100.0 * s.field_utilization(fi)
                );
            }
            true
        }
        "stats-json" => {
            let _ = write!(out, "{}", crate::report::stats_json(sim).to_pretty());
            true
        }
        "echo" => {
            let _ = writeln!(out, "{}", args.join(" "));
            true
        }
        "reset" => {
            sim.reset();
            let _ = writeln!(out, "reset");
            true
        }
        other => {
            let _ = writeln!(out, "error: unknown command `{other}`");
            false
        }
    }
}

/// Dispatches the attached command of every monitor that fired since
/// the last drain — the paper's §3.2: the scheduler hands attached
/// commands "back to the user interface for processing".
fn dispatch_attached_commands(sim: &mut Xsim<'_>, out: &mut String) {
    let events = sim.state_mut().take_events();
    let mut commands = Vec::new();
    for e in &events {
        let monitor = &sim.state().monitors()[e.monitor];
        let name = &sim.machine().storages[e.storage.0].name;
        let _ = writeln!(out, "cycle {}: {name}[{}] {} -> {}", e.cycle, e.index, e.old, e.new);
        if let Some(c) = &monitor.command {
            commands.push(c.clone());
        }
    }
    for c in commands {
        let _ = writeln!(out, "(attached) {c}");
        run_command(sim, &c, out);
    }
}

/// Runs a batch script (one command per line); returns the transcript.
pub fn run_batch(sim: &mut Xsim<'_>, script: &str) -> String {
    let mut out = String::new();
    for line in script.lines() {
        run_command(sim, line, &mut out);
    }
    out
}

fn parse_num(s: &str) -> Option<u64> {
    if let Some(h) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Parses `NAME` or `NAME[idx]` into a storage id and index.
fn parse_place(sim: &Xsim<'_>, s: &str) -> Option<(isdl::rtl::StorageId, u64)> {
    let (name, idx) = match s.split_once('[') {
        Some((n, rest)) => {
            let idx = parse_num(rest.strip_suffix(']')?)?;
            (n, idx)
        }
        None => (s, 0),
    };
    let (sid, _) = sim.machine().storage_by_name(name)?;
    Some((sid, idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xsim;
    use xasm::Assembler;

    fn sim_with(src: &str) -> (isdl::Machine, String) {
        let machine = isdl::load(isdl::samples::ACC16).expect("loads");
        (machine, src.to_owned())
    }

    #[test]
    fn batch_session() {
        let (machine, asm) =
            sim_with("ldi 7\naddm ten\nsta 0\nhalt\n.data\n.org 20\nten: .word 10\n");
        let program = Assembler::new(&machine).assemble(&asm).expect("assembles");
        let mut sim = Xsim::generate(&machine).expect("generates");
        sim.load_program(&program);
        let script = "\
# comment lines are ignored
echo hello
monitor ACC
step 2
events
x ACC
run
x DM[0]
stats
pc
";
        let out = run_batch(&mut sim, script);
        assert!(out.contains("hello"));
        // After two steps the `addm` result is still in the write-back
        // queue (latency 1): ACC shows the value `ldi` committed.
        assert!(out.contains("ACC = 16'h0007"), "transcript: {out}");
        assert!(out.contains("DM[0] = 16'h0011"), "transcript: {out}");
        assert!(out.contains("stopped: halted"), "transcript: {out}");
        assert!(out.contains(": ACC[0]"), "monitor event visible: {out}");
        assert!(out.contains("utilization"), "transcript: {out}");
    }

    #[test]
    fn breakpoints_via_cli() {
        let (machine, asm) = sim_with("ldi 1\nldi 2\nldi 3\nhalt\n");
        let program = Assembler::new(&machine).assemble(&asm).expect("assembles");
        let mut sim = Xsim::generate(&machine).expect("generates");
        sim.load_program(&program);
        let out = run_batch(&mut sim, "break 2\nrun\npc\n");
        assert!(out.contains("breakpoint at 0x2"));
        assert!(out.contains("stopped: breakpoint at 0x2"), "transcript: {out}");
    }

    #[test]
    fn set_and_examine() {
        let (machine, asm) = sim_with("halt\n");
        let program = Assembler::new(&machine).assemble(&asm).expect("assembles");
        let mut sim = Xsim::generate(&machine).expect("generates");
        sim.load_program(&program);
        let out = run_batch(&mut sim, "set DM[5] 0x2A\nx DM[5]\ndisasm 0\n");
        assert!(out.contains("DM[5] = 16'h002a"), "transcript: {out}");
        assert!(out.contains("0x0: halt"), "transcript: {out}");
    }

    #[test]
    fn attached_commands_dispatch_after_run() {
        let (machine, asm) = sim_with("ldi 7\nsta 3\nhalt\n");
        let program = Assembler::new(&machine).assemble(&asm).expect("assembles");
        let mut sim = Xsim::generate(&machine).expect("generates");
        sim.load_program(&program);
        // When DM[3] changes, automatically examine ACC and the cell.
        let out = run_batch(&mut sim, "monitor DM[3] -- x DM[3]\nrun\n");
        assert!(out.contains("(with attached command)"), "{out}");
        assert!(out.contains("DM[3] 16'h0000 -> 16'h0007"), "{out}");
        assert!(out.contains("(attached) x DM[3]"), "{out}");
        assert!(out.contains("DM[3] = 16'h0007"), "{out}");
    }

    #[test]
    fn unknown_command_reports() {
        let (machine, asm) = sim_with("halt\n");
        let program = Assembler::new(&machine).assemble(&asm).expect("assembles");
        let mut sim = Xsim::generate(&machine).expect("generates");
        sim.load_program(&program);
        let mut out = String::new();
        assert!(!run_command(&mut sim, "frobnicate", &mut out));
        assert!(out.contains("unknown command"));
    }
}
