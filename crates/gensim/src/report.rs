//! Versioned JSON reports from a running simulator: execution
//! statistics (`xsim-stats/1`), the event trace (`xsim-trace/1`), and
//! the cycle-attribution profile (`xsim-profile/1`).
//!
//! The schemas are reference-documented in `docs/OBSERVABILITY.md`;
//! `EXPERIMENTS.md` shows how to regenerate the paper-style cycle/IPC
//! tables from these files, and `crates/bench` turns them into
//! `BENCH_*.json` entries. The schema string is the compatibility
//! contract: consumers must check it and reject major versions they
//! do not know.

use crate::exec::binding_from_operand;
use crate::hazard;
use crate::sched::{ProfileRow, StallCause, TraceEvent, Xsim};
use isdl::model::Machine;
use obs::Json;

/// Schema identifier emitted by [`stats_json`]. Bump the suffix on
/// breaking changes.
pub const STATS_SCHEMA: &str = "xsim-stats/1";

/// Schema identifier emitted by [`trace_json`].
pub const TRACE_SCHEMA: &str = "xsim-trace/1";

/// Schema identifier emitted by [`profile_json`].
pub const PROFILE_SCHEMA: &str = "xsim-profile/1";

/// The simulator's execution statistics as a schema-versioned JSON
/// object: totals (`cycles`, `instructions`, `stall_cycles`, `ipc`)
/// plus one entry per field with its busy count, utilization, and
/// per-opcode retire counts.
///
/// Invariants consumers may rely on (tested):
/// * per field, the `retired` counts sum to `instructions` (every
///   executed instruction selects exactly one operation per field,
///   nops included);
/// * `ipc == instructions / cycles`;
/// * `stall_cycles <= cycles`;
/// * the `opt` object reports the RTL middle-end's work
///   ([`isdl::opt::OptStats`]): with `opt.level == "0"` every counter
///   is zero, and `opt.nodes_eliminated ==
///   opt.nodes_before - opt.nodes_after`;
/// * `opt.schedule` is the printable pass schedule that ran, and
///   `opt.passes` holds one sub-object per pass whose signed
///   `nodes_in - nodes_out` deltas sum exactly to
///   `opt.nodes_before - opt.nodes_after` (the per-pass partition
///   invariant).
#[must_use]
pub fn stats_json(sim: &Xsim<'_>) -> Json {
    let stats = sim.stats();
    let machine = sim.machine();
    let fields: Vec<Json> = machine
        .fields
        .iter()
        .zip(sim.op_count_table())
        .enumerate()
        .map(|(fi, (field, counts))| {
            let ops: Vec<Json> = field
                .ops
                .iter()
                .zip(counts)
                .map(|(op, &retired)| {
                    Json::obj().with("name", op.name.as_str()).with("retired", retired)
                })
                .collect();
            Json::obj()
                .with("name", field.name.as_str())
                .with("busy", stats.field_busy.get(fi).copied().unwrap_or(0))
                .with("utilization", stats.field_utilization(fi))
                .with("ops", Json::Arr(ops))
        })
        .collect();
    let o = sim.opt_stats();
    let passes: Vec<Json> = o
        .passes
        .iter()
        .map(|p| {
            Json::obj()
                .with("name", p.name)
                .with("runs", p.runs)
                .with("nodes_in", p.nodes_in)
                .with("nodes_out", p.nodes_out)
                .with("rewrites", p.rewrites)
        })
        .collect();
    let opt = Json::obj()
        .with("level", sim.options().opt.to_string())
        .with("schedule", sim.pipeline().to_string())
        .with("nodes_before", o.nodes_before)
        .with("nodes_after", o.nodes_after)
        .with("nodes_eliminated", o.nodes_eliminated())
        .with("folded", o.folded)
        .with("algebraic", o.algebraic)
        .with("ext_removed", o.ext_removed)
        .with("narrowed", o.narrowed)
        .with("cse_hits", o.cse_hits)
        .with("dead_writes", o.dead_writes)
        .with("propagated", o.propagated)
        .with("strength_reduced", o.strength_reduced)
        .with("loads_forwarded", o.loads_forwarded)
        .with("decode_shared", o.decode_shared)
        .with("wide_fallbacks", sim.wide_fallbacks())
        .with("passes", Json::Arr(passes));
    let t = sim.translate_stats();
    let translate = Json::obj()
        .with("enabled", t.enabled)
        .with("blocks", t.blocks)
        .with("invalidations", t.invalidations)
        .with("block_instructions", t.block_instructions)
        .with("interp_instructions", t.interp_instructions)
        .with("fused_ops_removed", t.fused_ops_removed);
    Json::obj()
        .with("schema", STATS_SCHEMA)
        .with("machine", machine.name.as_str())
        .with("cycles", stats.cycles)
        .with("instructions", stats.instructions)
        .with("stall_cycles", stats.stall_cycles)
        .with("ipc", stats.ipc())
        .with("opt", opt)
        .with("translate", translate)
        .with("fields", Json::Arr(fields))
}

/// Publishes the middle-end counters into `registry` under
/// `opt.*` names (`opt.nodes_eliminated`, `opt.cse_hits`, ...), so a
/// host embedding XSIM observes optimizer work through the same
/// [`obs::Registry`] snapshot as its other metrics. Counters are
/// monotonic and the full totals are added each call, so publish
/// once per simulator.
pub fn publish_opt_counters(sim: &Xsim<'_>, registry: &obs::Registry) {
    let o = sim.opt_stats();
    for (name, v) in [
        ("opt.nodes_before", o.nodes_before),
        ("opt.nodes_after", o.nodes_after),
        ("opt.nodes_eliminated", o.nodes_eliminated()),
        ("opt.folded", o.folded),
        ("opt.algebraic", o.algebraic),
        ("opt.ext_removed", o.ext_removed),
        ("opt.narrowed", o.narrowed),
        ("opt.cse_hits", o.cse_hits),
        ("opt.dead_writes", o.dead_writes),
        ("opt.propagated", o.propagated),
        ("opt.strength_reduced", o.strength_reduced),
        ("opt.loads_forwarded", o.loads_forwarded),
        ("opt.decode_shared", o.decode_shared),
        ("opt.wide_fallbacks", sim.wide_fallbacks()),
    ] {
        registry.counter(name).add(v);
    }
}

/// Publishes the translation-tier counters into `registry` under
/// `translate.*` names (blocks translated, precise invalidations, the
/// fused-vs-interpreted dispatch mix, μ-ops removed by trace
/// optimization). `translate.enabled` is published as 0/1 so gauges
/// and counters share one numeric registry. Totals are added each
/// call, so publish once per simulator.
pub fn publish_translate_counters(sim: &Xsim<'_>, registry: &obs::Registry) {
    let t = sim.translate_stats();
    for (name, v) in [
        ("translate.enabled", u64::from(t.enabled)),
        ("translate.blocks", t.blocks),
        ("translate.invalidations", t.invalidations),
        ("translate.block_instructions", t.block_instructions),
        ("translate.interp_instructions", t.interp_instructions),
        ("translate.fused_ops_removed", t.fused_ops_removed),
    ] {
        registry.counter(name).add(v);
    }
}

/// The recorded event trace as a schema-versioned JSON object, or an
/// empty trace object if event tracing was never enabled
/// ([`Xsim::enable_event_trace`]).
///
/// Each event carries the execution cycle, the pc, the selected
/// operation names in field order, and the staged writes as
/// `storage`/`index`/`value` triples (`value` is the Verilog-style
/// bit-true literal, e.g. `16'h002a`).
#[must_use]
pub fn trace_json(sim: &Xsim<'_>) -> Json {
    let machine = sim.machine();
    let (capacity, dropped, events): (usize, u64, Vec<Json>) = match sim.event_trace() {
        None => (0, 0, Vec::new()),
        Some(trace) => (
            trace.capacity(),
            trace.dropped(),
            trace.events().map(|e| event_json(machine, e)).collect(),
        ),
    };
    Json::obj()
        .with("schema", TRACE_SCHEMA)
        .with("machine", machine.name.as_str())
        .with("capacity", capacity)
        .with("dropped", dropped)
        .with("events", Json::Arr(events))
}

/// Renders one retire record as the JSON object `xsim-trace/1` carries
/// per event — also the line format of the streaming trace sink
/// ([`Xsim::set_event_sink`]), so ring and stream consumers parse one
/// shape.
pub(crate) fn event_json(machine: &Machine, e: &TraceEvent) -> Json {
    let ops: Vec<Json> = e.ops.iter().map(|r| Json::from(machine.op(*r).name.as_str())).collect();
    let writes: Vec<Json> = e
        .writes
        .iter()
        .map(|w| {
            Json::obj()
                .with("storage", machine.storage(w.storage).name.as_str())
                .with("index", w.index)
                .with("value", w.value.to_string())
        })
        .collect();
    Json::obj()
        .with("cycle", e.cycle)
        .with("pc", e.pc)
        .with("ops", Json::Arr(ops))
        .with("writes", Json::Arr(writes))
}

fn cause_json(machine: &Machine, cause: StallCause) -> Json {
    match cause {
        StallCause::Data { storage, producer_pc } => Json::obj()
            .with("kind", "data")
            .with("storage", machine.storage(storage).name.as_str())
            .with("producer_pc", producer_pc),
        // For usage hazards the `storage` key names the occupied
        // functional unit (field) — the "resource waited on" slot is
        // shared so consumers can group by one key.
        StallCause::Usage { field, producer_pc } => Json::obj()
            .with("kind", "usage")
            .with("storage", machine.fields[field].name.as_str())
            .with("producer_pc", producer_pc),
    }
}

/// The cycle-attribution profile as a schema-versioned JSON object
/// (empty tables if profiling was never enabled —
/// [`Xsim::enable_profile`]).
///
/// Three views of the same counters:
///
/// * `pcs` — one row per instruction address that issued (or charged
///   fault-path stalls): `issues`, `cycles`, `stall_cycles`, the
///   selected operation names in field order, and — when the row
///   stalled — the `stall_cause` object naming the hazard kind, the
///   storage (or functional unit) waited on, and the producer PC.
/// * `regions` — the `pcs` rows aggregated by the program's
///   code-section labels, gprof-style: each label opens a region that
///   extends to the next label; unlabeled prefixes fall into a
///   synthetic `(entry)` region.
/// * `storages` — a read/write heat map: the static accesses of each
///   executed instruction weighted by its dynamic issue count.
///
/// Invariants consumers may rely on, provided profiling was enabled
/// before the first step (tested in `tests/profile_invariants.rs`):
/// summing `cycles` over `pcs` (or `regions`) reproduces the
/// machine-wide `cycles` exactly, likewise `stall_cycles`, and every
/// row with `stall_cycles > 0` carries a non-null `stall_cause`.
/// Caveat: self-modifying code invalidates the covering decode-cache
/// entries, so `ops` and `stall_cause` reflect the *current* memory
/// image, not history.
#[must_use]
pub fn profile_json(sim: &Xsim<'_>) -> Json {
    let machine = sim.machine();
    let stats = sim.stats();
    let rows: &[ProfileRow] = sim.profile().map_or(&[], |p| p.rows());
    let active: Vec<(u64, ProfileRow)> = rows
        .iter()
        .enumerate()
        .filter(|(_, r)| r.issues > 0 || r.cycles > 0)
        .map(|(pc, r)| (pc as u64, *r))
        .collect();

    // Per-op (operation, bindings) pairs for one address, from the
    // decode cache when warm, else a fresh decode (online-decode runs
    // never populate the cache).
    let ops_of = |pc: u64| -> Option<(Vec<String>, Option<StallCause>, hazard::Access)> {
        let mut access = hazard::Access::default();
        if let Some(entry) = sim.decoded_entry(pc) {
            let names = entry.instr.ops.iter().map(|d| machine.op(d.op).name.clone()).collect();
            for (d, b) in entry.instr.ops.iter().zip(&entry.bindings) {
                hazard::collect_op_access(machine, machine.op(d.op), b, &mut access);
            }
            Some((names, entry.stall_cause, access))
        } else {
            let instr = sim.decode_instr(pc)?;
            let names = instr.ops.iter().map(|d| machine.op(d.op).name.clone()).collect();
            for d in &instr.ops {
                let b: Vec<_> = d.args.iter().map(binding_from_operand).collect();
                hazard::collect_op_access(machine, machine.op(d.op), &b, &mut access);
            }
            Some((names, None, access))
        }
    };

    let mut reads = vec![0u64; machine.storages.len()];
    let mut writes = vec![0u64; machine.storages.len()];
    let pcs: Vec<Json> = active
        .iter()
        .map(|&(pc, row)| {
            let mut j = Json::obj()
                .with("pc", pc)
                .with("issues", row.issues)
                .with("cycles", row.cycles)
                .with("stall_cycles", row.stall_cycles);
            match ops_of(pc) {
                Some((names, cause, access)) => {
                    j.insert("ops", names.into_iter().map(Json::from).collect::<Json>());
                    j.insert("stall_cause", cause.map_or(Json::Null, |c| cause_json(machine, c)));
                    for c in &access.reads {
                        reads[c.storage.0] += row.issues;
                    }
                    for c in &access.writes {
                        writes[c.storage.0] += row.issues;
                    }
                }
                None => {
                    j.insert("ops", Json::Arr(Vec::new()));
                    j.insert("stall_cause", Json::Null);
                }
            }
            j
        })
        .collect();

    // Region table: each code label opens a region until the next;
    // anything before the first label lands in a synthetic `(entry)`.
    let mut bounds: Vec<(u64, &str)> = Vec::new();
    if sim.regions().first().is_none_or(|(a, _)| *a > 0) {
        bounds.push((0, "(entry)"));
    }
    for (a, name) in sim.regions() {
        if bounds.last().is_some_and(|(b, _)| b == a) {
            continue; // two labels on one address: first wins
        }
        bounds.push((*a, name.as_str()));
    }
    let mut agg = vec![ProfileRow::default(); bounds.len()];
    for &(pc, row) in &active {
        let idx = bounds.partition_point(|(a, _)| *a <= pc).saturating_sub(1);
        agg[idx].issues += row.issues;
        agg[idx].cycles += row.cycles;
        agg[idx].stall_cycles += row.stall_cycles;
    }
    let regions: Vec<Json> = bounds
        .iter()
        .enumerate()
        .map(|(i, &(start, name))| {
            let end = bounds.get(i + 1).map_or(rows.len() as u64, |(a, _)| *a);
            Json::obj()
                .with("name", name)
                .with("start", start)
                .with("end", end)
                .with("issues", agg[i].issues)
                .with("cycles", agg[i].cycles)
                .with("stall_cycles", agg[i].stall_cycles)
        })
        .collect();

    let storages: Vec<Json> = machine
        .storages
        .iter()
        .enumerate()
        .filter(|&(i, _)| reads[i] > 0 || writes[i] > 0)
        .map(|(i, s)| {
            Json::obj()
                .with("name", s.name.as_str())
                .with("reads", reads[i])
                .with("writes", writes[i])
        })
        .collect();

    Json::obj()
        .with("schema", PROFILE_SCHEMA)
        .with("machine", machine.name.as_str())
        .with("cycles", stats.cycles)
        .with("instructions", stats.instructions)
        .with("stall_cycles", stats.stall_cycles)
        .with("pcs", Json::Arr(pcs))
        .with("regions", Json::Arr(regions))
        .with("storages", Json::Arr(storages))
}
