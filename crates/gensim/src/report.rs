//! Versioned JSON reports from a running simulator: execution
//! statistics (`xsim-stats/1`) and the event trace (`xsim-trace/1`).
//!
//! The schemas are reference-documented in `docs/OBSERVABILITY.md`;
//! `EXPERIMENTS.md` shows how to regenerate the paper-style cycle/IPC
//! tables from these files, and `crates/bench` turns them into
//! `BENCH_*.json` entries. The schema string is the compatibility
//! contract: consumers must check it and reject major versions they
//! do not know.

use crate::sched::Xsim;
use obs::Json;

/// Schema identifier emitted by [`stats_json`]. Bump the suffix on
/// breaking changes.
pub const STATS_SCHEMA: &str = "xsim-stats/1";

/// Schema identifier emitted by [`trace_json`].
pub const TRACE_SCHEMA: &str = "xsim-trace/1";

/// The simulator's execution statistics as a schema-versioned JSON
/// object: totals (`cycles`, `instructions`, `stall_cycles`, `ipc`)
/// plus one entry per field with its busy count, utilization, and
/// per-opcode retire counts.
///
/// Invariants consumers may rely on (tested):
/// * per field, the `retired` counts sum to `instructions` (every
///   executed instruction selects exactly one operation per field,
///   nops included);
/// * `ipc == instructions / cycles`;
/// * `stall_cycles <= cycles`;
/// * the `opt` object reports the RTL middle-end's work
///   ([`isdl::opt::OptStats`]): with `opt.level == "0"` every counter
///   is zero, and `opt.nodes_eliminated ==
///   opt.nodes_before - opt.nodes_after`.
#[must_use]
pub fn stats_json(sim: &Xsim<'_>) -> Json {
    let stats = sim.stats();
    let machine = sim.machine();
    let fields: Vec<Json> = machine
        .fields
        .iter()
        .zip(sim.op_count_table())
        .enumerate()
        .map(|(fi, (field, counts))| {
            let ops: Vec<Json> = field
                .ops
                .iter()
                .zip(counts)
                .map(|(op, &retired)| {
                    Json::obj().with("name", op.name.as_str()).with("retired", retired)
                })
                .collect();
            Json::obj()
                .with("name", field.name.as_str())
                .with("busy", stats.field_busy.get(fi).copied().unwrap_or(0))
                .with("utilization", stats.field_utilization(fi))
                .with("ops", Json::Arr(ops))
        })
        .collect();
    let o = sim.opt_stats();
    let opt = Json::obj()
        .with("level", sim.options().opt.to_string())
        .with("nodes_before", o.nodes_before)
        .with("nodes_after", o.nodes_after)
        .with("nodes_eliminated", o.nodes_eliminated())
        .with("folded", o.folded)
        .with("algebraic", o.algebraic)
        .with("ext_removed", o.ext_removed)
        .with("narrowed", o.narrowed)
        .with("cse_hits", o.cse_hits)
        .with("dead_writes", o.dead_writes)
        .with("wide_fallbacks", sim.wide_fallbacks());
    Json::obj()
        .with("schema", STATS_SCHEMA)
        .with("machine", machine.name.as_str())
        .with("cycles", stats.cycles)
        .with("instructions", stats.instructions)
        .with("stall_cycles", stats.stall_cycles)
        .with("ipc", stats.ipc())
        .with("opt", opt)
        .with("fields", Json::Arr(fields))
}

/// Publishes the middle-end counters into `registry` under
/// `opt.*` names (`opt.nodes_eliminated`, `opt.cse_hits`, ...), so a
/// host embedding XSIM observes optimizer work through the same
/// [`obs::Registry`] snapshot as its other metrics. Counters are
/// monotonic and the full totals are added each call, so publish
/// once per simulator.
pub fn publish_opt_counters(sim: &Xsim<'_>, registry: &obs::Registry) {
    let o = sim.opt_stats();
    for (name, v) in [
        ("opt.nodes_before", o.nodes_before),
        ("opt.nodes_after", o.nodes_after),
        ("opt.nodes_eliminated", o.nodes_eliminated()),
        ("opt.folded", o.folded),
        ("opt.algebraic", o.algebraic),
        ("opt.ext_removed", o.ext_removed),
        ("opt.narrowed", o.narrowed),
        ("opt.cse_hits", o.cse_hits),
        ("opt.dead_writes", o.dead_writes),
        ("opt.wide_fallbacks", sim.wide_fallbacks()),
    ] {
        registry.counter(name).add(v);
    }
}

/// The recorded event trace as a schema-versioned JSON object, or an
/// empty trace object if event tracing was never enabled
/// ([`Xsim::enable_event_trace`]).
///
/// Each event carries the execution cycle, the pc, the selected
/// operation names in field order, and the staged writes as
/// `storage`/`index`/`value` triples (`value` is the Verilog-style
/// bit-true literal, e.g. `16'h002a`).
#[must_use]
pub fn trace_json(sim: &Xsim<'_>) -> Json {
    let machine = sim.machine();
    let (capacity, dropped, events): (usize, u64, Vec<Json>) = match sim.event_trace() {
        None => (0, 0, Vec::new()),
        Some(trace) => (
            trace.capacity(),
            trace.dropped(),
            trace
                .events()
                .map(|e| {
                    let ops: Vec<Json> =
                        e.ops.iter().map(|r| Json::from(machine.op(*r).name.as_str())).collect();
                    let writes: Vec<Json> = e
                        .writes
                        .iter()
                        .map(|w| {
                            Json::obj()
                                .with("storage", machine.storage(w.storage).name.as_str())
                                .with("index", w.index)
                                .with("value", w.value.to_string())
                        })
                        .collect();
                    Json::obj()
                        .with("cycle", e.cycle)
                        .with("pc", e.pc)
                        .with("ops", Json::Arr(ops))
                        .with("writes", Json::Arr(writes))
                })
                .collect(),
        ),
    };
    Json::obj()
        .with("schema", TRACE_SCHEMA)
        .with("machine", machine.name.as_str())
        .with("capacity", capacity)
        .with("dropped", dropped)
        .with("events", Json::Arr(events))
}
