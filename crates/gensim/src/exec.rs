//! The processing core: executes operation RTL against simulator state.
//!
//! This is the tree-walking core — the direct interpretation of the
//! resolved RTL. The bytecode core (`crate::bytecode`) compiles the
//! same semantics into a flat program (the Rust analogue of GENSIM
//! emitting C); both must agree bit-for-bit, which the test suite
//! checks by running programs on each.
//!
//! Execution of one operation produces a list of [`StagedWrite`]s; the
//! scheduler merges the per-phase lists, implements the
//! read-before-write discipline and the latency-delayed commit.
//!
//! Execution is *fallible*: a malformed frame (an operand whose shape
//! does not match its parameter, a missing binding, an option without
//! the clause a context requires) surfaces as an [`ExecError`]
//! diagnostic instead of aborting the process — the scheduler turns it
//! into a stop reason, and the exploration layer into a skipped
//! candidate.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use bitv::BitVector;
use isdl::model::{Machine, Operation};
use isdl::rtl::{BinOp, RExpr, RExprKind, RLvalue, RStmt, StorageId};
use xasm::Operand;

/// A runtime fault while executing RTL: the frame handed to the
/// executor does not fit the operation. Sema-validated machines and
/// disassembler-produced bindings never trigger these; hand-built
/// frames (or a buggy generator) produce a diagnostic instead of an
/// abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Parameter `param` of `op` has no binding in the frame.
    MissingBinding {
        /// Operation name.
        op: String,
        /// Parameter index.
        param: usize,
    },
    /// The binding for `param` of `op` has the wrong shape (a token
    /// where a non-terminal was required, or vice versa).
    OperandShape {
        /// Operation name.
        op: String,
        /// Parameter index.
        param: usize,
    },
    /// A non-terminal option used as an assignment destination has no
    /// assignable `value` l-value.
    NotAssignable {
        /// Option name.
        option: String,
    },
    /// A non-terminal option read as a value has no `value` clause.
    NoValue {
        /// Option name.
        option: String,
    },
    /// A concatenation with no parts.
    EmptyConcat,
    /// An optimizer temporary referenced before its `Let` bound it.
    /// Well-formed optimizer output never triggers this; it guards
    /// hand-built statement lists.
    UnboundTmp {
        /// Temporary index.
        tmp: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingBinding { op, param } => {
                write!(f, "operation `{op}` has no binding for parameter #{param}")
            }
            Self::OperandShape { op, param } => {
                write!(f, "operand #{param} of `{op}` does not match the parameter shape")
            }
            Self::NotAssignable { option } => {
                write!(f, "non-terminal option `{option}` is not assignable")
            }
            Self::NoValue { option } => {
                write!(f, "non-terminal option `{option}` has no value clause")
            }
            Self::EmptyConcat => write!(f, "empty concatenation"),
            Self::UnboundTmp { tmp } => {
                write!(f, "temporary t{tmp} referenced before it was bound")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A runtime operand binding for one parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Binding {
    /// Token parameter: the decoded value.
    Token(BitVector),
    /// Non-terminal parameter: which option was decoded and its own
    /// bindings.
    Nt {
        /// Index of the option within the non-terminal.
        option: usize,
        /// The option's operation definition (borrowed from the machine).
        /// Stored by index to keep the binding `'static`-free: the
        /// non-terminal id.
        nt: usize,
        /// Bindings for the option's parameters.
        args: Vec<Binding>,
    },
}

/// Converts a decoded operand (from the disassembler) into a binding.
#[must_use]
pub fn binding_from_operand(op: &Operand) -> Binding {
    match op {
        Operand::Token(v) => Binding::Token(v.clone()),
        Operand::NonTerminal { nt, option, args } => Binding::Nt {
            option: *option,
            nt: nt.0,
            args: args.iter().map(binding_from_operand).collect(),
        },
    }
}

/// A write staged by RTL execution, not yet visible to reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedWrite {
    /// Target storage.
    pub storage: StorageId,
    /// Cell index (0 for non-addressed storage).
    pub index: u64,
    /// High bit written (inclusive).
    pub hi: u32,
    /// Low bit written (inclusive).
    pub lo: u32,
    /// The bits.
    pub value: BitVector,
    /// Cycles until visible (from the operation's `latency`).
    pub latency: u32,
}

/// Read access to state during a phase.
pub trait StateView {
    /// Reads a whole cell.
    fn read_cell(&self, storage: StorageId, index: u64) -> BitVector;
}

impl StateView for crate::state::State {
    fn read_cell(&self, storage: StorageId, index: u64) -> BitVector {
        self.read(storage, index).clone()
    }
}

/// A view of base state with a list of staged writes applied — what the
/// side-effect phase reads (cycle-start state plus the action phase's
/// writes), per the documented cycle model.
#[derive(Debug)]
pub struct OverlayView<'a, V: StateView> {
    base: &'a V,
    writes: &'a [StagedWrite],
}

impl<'a, V: StateView> OverlayView<'a, V> {
    /// Creates a view of `base` with `writes` applied in order.
    #[must_use]
    pub fn new(base: &'a V, writes: &'a [StagedWrite]) -> Self {
        Self { base, writes }
    }
}

impl<V: StateView> StateView for OverlayView<'_, V> {
    fn read_cell(&self, storage: StorageId, index: u64) -> BitVector {
        let mut v = self.base.read_cell(storage, index);
        for w in self.writes {
            if w.storage == storage && w.index == index {
                v = if w.lo == 0 && w.hi == v.width() - 1 {
                    w.value.clone()
                } else {
                    v.with_slice(w.hi, w.lo, &w.value)
                };
            }
        }
        v
    }
}

/// An execution frame: one operation plus its operand bindings.
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    /// The operation being executed (an op of a field, or a
    /// non-terminal option during recursion).
    pub op: &'a Operation,
    /// One binding per parameter.
    pub bindings: &'a [Binding],
}

/// Executes a statement list, appending staged writes to `out`.
///
/// Reads go through `view`; writes do not become visible within the
/// same phase (read-before-write).
///
/// # Errors
/// Returns an [`ExecError`] when a binding does not fit the operation
/// (out of `out` may hold a prefix of the staged writes; callers
/// discard it on error).
pub fn exec_stmts<V: StateView>(
    machine: &Machine,
    stmts: &[RStmt],
    frame: Frame<'_>,
    view: &V,
    latency: u32,
    out: &mut Vec<StagedWrite>,
) -> Result<(), ExecError> {
    // Environment for optimizer-introduced `Let` temporaries; empty
    // (and never allocated) for unoptimized RTL.
    let mut temps: Vec<Option<BitVector>> = Vec::new();
    for s in stmts {
        exec_stmt(machine, s, frame, view, latency, out, &mut temps)?;
    }
    Ok(())
}

fn exec_stmt<V: StateView>(
    machine: &Machine,
    s: &RStmt,
    frame: Frame<'_>,
    view: &V,
    latency: u32,
    out: &mut Vec<StagedWrite>,
    temps: &mut Vec<Option<BitVector>>,
) -> Result<(), ExecError> {
    match s {
        RStmt::Assign { lv, rhs } => {
            let value = eval_with(machine, rhs, frame, view, temps)?;
            let (storage, index, hi, lo) = resolve_lvalue(machine, lv, frame, view, temps)?;
            debug_assert_eq!(value.width(), hi - lo + 1, "sema guarantees assignment widths");
            out.push(StagedWrite { storage, index, hi, lo, value, latency });
        }
        RStmt::If { cond, then_body, else_body } => {
            let c = eval_with(machine, cond, frame, view, temps)?;
            let body = if c.is_zero() { else_body } else { then_body };
            for s in body {
                exec_stmt(machine, s, frame, view, latency, out, temps)?;
            }
        }
        RStmt::Let { tmp, rhs } => {
            let v = eval_with(machine, rhs, frame, view, temps)?;
            if temps.len() <= *tmp {
                temps.resize(*tmp + 1, None);
            }
            temps[*tmp] = Some(v);
        }
    }
    Ok(())
}

fn frame_binding<'a>(frame: Frame<'a>, p: usize) -> Result<&'a Binding, ExecError> {
    frame
        .bindings
        .get(p)
        .ok_or_else(|| ExecError::MissingBinding { op: frame.op.name.clone(), param: p })
}

/// Resolves an l-value to `(storage, cell index, hi, lo)`.
fn resolve_lvalue<V: StateView>(
    machine: &Machine,
    lv: &RLvalue,
    frame: Frame<'_>,
    view: &V,
    temps: &[Option<BitVector>],
) -> Result<(StorageId, u64, u32, u32), ExecError> {
    match lv {
        RLvalue::Storage(id) => {
            let w = machine.storage(*id).width;
            Ok((*id, 0, w - 1, 0))
        }
        RLvalue::StorageIndexed(id, idx) => {
            let i = eval_with(machine, idx, frame, view, temps)?.to_u64_lossy();
            let w = machine.storage(*id).width;
            Ok((*id, i, w - 1, 0))
        }
        RLvalue::Slice { base, hi, lo } => {
            let (id, idx, _bhi, blo) = resolve_lvalue(machine, base, frame, view, temps)?;
            Ok((id, idx, blo + hi, blo + lo))
        }
        RLvalue::Param(p) => {
            let Binding::Nt { option, nt, args } = frame_binding(frame, *p)? else {
                return Err(ExecError::OperandShape { op: frame.op.name.clone(), param: *p });
            };
            let opt = &machine.nonterminals[*nt].options[*option];
            let inner = opt
                .value_lvalue
                .as_ref()
                .ok_or_else(|| ExecError::NotAssignable { option: opt.name.clone() })?;
            let sub = Frame { op: opt, bindings: args };
            resolve_lvalue(machine, inner, sub, view, temps)
        }
    }
}

/// Evaluates an expression to a bit-true value.
///
/// # Errors
/// Returns an [`ExecError`] when a parameter binding is missing or has
/// the wrong shape, or an option lacks a required `value` clause.
pub fn eval<V: StateView>(
    machine: &Machine,
    e: &RExpr,
    frame: Frame<'_>,
    view: &V,
) -> Result<BitVector, ExecError> {
    eval_with(machine, e, frame, view, &[])
}

/// [`eval`] with an environment for optimizer temporaries; a `Tmp`
/// reference outside any bound `Let` is [`ExecError::UnboundTmp`].
fn eval_with<V: StateView>(
    machine: &Machine,
    e: &RExpr,
    frame: Frame<'_>,
    view: &V,
    temps: &[Option<BitVector>],
) -> Result<BitVector, ExecError> {
    Ok(match &e.kind {
        RExprKind::Lit(v) => v.clone(),
        RExprKind::Storage(id) => view.read_cell(*id, 0),
        RExprKind::StorageIndexed(id, idx) => {
            let i = eval_with(machine, idx, frame, view, temps)?.to_u64_lossy();
            view.read_cell(*id, i)
        }
        RExprKind::Param(p) => match frame_binding(frame, *p)? {
            Binding::Token(v) => v.clone(),
            Binding::Nt { option, nt, args } => {
                let opt = &machine.nonterminals[*nt].options[*option];
                let value = opt
                    .value
                    .as_ref()
                    .ok_or_else(|| ExecError::NoValue { option: opt.name.clone() })?;
                let sub = Frame { op: opt, bindings: args };
                // Option value expressions are never optimized, so
                // temporaries cannot leak across the frame switch.
                eval_with(machine, value, sub, view, temps)?
            }
        },
        RExprKind::Slice(inner, hi, lo) => {
            eval_with(machine, inner, frame, view, temps)?.slice(*hi, *lo)
        }
        RExprKind::Unary(op, inner) => {
            isdl::opt::eval_unop(*op, &eval_with(machine, inner, frame, view, temps)?)
        }
        RExprKind::Binary(op, a, b) => {
            let x = eval_with(machine, a, frame, view, temps)?;
            let y = eval_with(machine, b, frame, view, temps)?;
            eval_binop(*op, &x, &y)
        }
        RExprKind::Cond(c, t, f) => {
            if eval_with(machine, c, frame, view, temps)?.is_zero() {
                eval_with(machine, f, frame, view, temps)?
            } else {
                eval_with(machine, t, frame, view, temps)?
            }
        }
        RExprKind::Ext(kind, inner) => {
            isdl::opt::eval_ext(*kind, &eval_with(machine, inner, frame, view, temps)?, e.width)
        }
        RExprKind::Concat(parts) => {
            let mut it = parts.iter();
            let first = it.next().ok_or(ExecError::EmptyConcat)?;
            let mut acc = eval_with(machine, first, frame, view, temps)?;
            for p in it {
                acc = acc.concat(&eval_with(machine, p, frame, view, temps)?);
            }
            acc
        }
        RExprKind::Tmp(t) => match temps.get(*t).and_then(Option::as_ref) {
            Some(v) => v.clone(),
            None => return Err(ExecError::UnboundTmp { tmp: *t }),
        },
    })
}

/// Applies a binary RTL operator to two values of equal width
/// (except shifts, where `b` supplies only the amount).
///
/// Delegates to [`isdl::opt::eval_binop`] — the optimizer's constant
/// folder and this interpreter share one definition of the operator
/// semantics, so they cannot drift apart.
#[must_use]
pub fn eval_binop(op: BinOp, a: &BitVector, b: &BitVector) -> BitVector {
    isdl::opt::eval_binop(op, a, b)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::state::State;
    use isdl::samples::TOY;
    use xasm::Disassembler;

    struct Setup {
        machine: Machine,
        state: State,
    }

    fn setup() -> Setup {
        let machine = isdl::load(TOY).expect("loads");
        let state = State::new(&machine);
        Setup { machine, state }
    }

    /// Decodes a word and executes field `fi`'s action.
    fn run_action(s: &mut Setup, word: u64, fi: usize) -> Vec<StagedWrite> {
        let d = Disassembler::new(&s.machine);
        let instr = d.decode(&[BitVector::from_u64(word, 32)], 0).expect("decodes");
        let dop = &instr.ops[fi];
        let op = s.machine.op(dop.op);
        let bindings: Vec<Binding> = dop.args.iter().map(binding_from_operand).collect();
        let frame = Frame { op, bindings: &bindings };
        let mut out = Vec::new();
        exec_stmts(&s.machine, &op.action, frame, &s.state, op.timing.latency, &mut out)
            .expect("executes");
        out
    }

    #[test]
    fn add_reads_and_stages() {
        let mut s = setup();
        let rf = s.machine.storage_by_name("RF").expect("RF").0;
        s.state.poke(rf, 1, BitVector::from_u64(10, 16));
        s.state.poke(rf, 3, BitVector::from_u64(32, 16));
        // add R2, R1, reg(R3)
        let word = (0b00001u64 << 27) | (2 << 24) | (1 << 21) | (0b0011 << 17);
        let writes = run_action(&mut s, word, 0);
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].storage, rf);
        assert_eq!(writes[0].index, 2);
        assert_eq!(writes[0].value.to_u64_lossy(), 42);
        assert_eq!(writes[0].latency, 1);
        // Nothing visible yet.
        assert!(s.state.read(rf, 2).is_zero());
    }

    #[test]
    fn indirect_source_reads_memory() {
        let mut s = setup();
        let rf = s.machine.storage_by_name("RF").expect("RF").0;
        let dm = s.machine.storage_by_name("DM").expect("DM").0;
        s.state.poke(rf, 2, BitVector::from_u64(0x30, 16));
        s.state.poke(dm, 0x30, BitVector::from_u64(99, 16));
        // add R0, R0, ind(R2): RF[0] = RF[0] + DM[RF[2] mod 256]
        let word = (0b00001u64 << 27) | (0b1010 << 17);
        let writes = run_action(&mut s, word, 0);
        assert_eq!(writes[0].value.to_u64_lossy(), 99);
    }

    #[test]
    fn conditional_branch_taken_and_not() {
        let mut s = setup();
        let pc = s.machine.pc.expect("pc");
        let acc = s.machine.storage_by_name("ACC").expect("ACC").0;
        // jz 7 with ACC == 0: takes branch.
        let word = (0b01001u64 << 27) | (7 << 16);
        let writes = run_action(&mut s, word, 0);
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].storage, pc);
        assert_eq!(writes[0].value.to_u64_lossy(), 7);
        // With ACC != 0: no write.
        s.state.poke(acc, 0, BitVector::from_u64(1, 16));
        let writes = run_action(&mut s, word, 0);
        assert!(writes.is_empty());
    }

    #[test]
    fn mac_has_latency_two() {
        let mut s = setup();
        let rf = s.machine.storage_by_name("RF").expect("RF").0;
        s.state.poke(rf, 6, BitVector::from_u64(6, 16));
        s.state.poke(rf, 7, BitVector::from_u64(7, 16));
        let word = (0b01010u64 << 27) | (6 << 24) | (7 << 21);
        let writes = run_action(&mut s, word, 0);
        assert_eq!(writes[0].value.to_u64_lossy(), 42);
        assert_eq!(writes[0].latency, 2);
    }

    #[test]
    fn side_effects_recompute_from_cycle_start_state() {
        let mut s = setup();
        let rf = s.machine.storage_by_name("RF").expect("RF").0;
        s.state.poke(rf, 1, BitVector::from_u64(5, 16));
        // sub R2, R1, reg(R1): result 0, so the side effect sets Z by
        // recomputing the subtraction against cycle-start state.
        let word = (0b00010u64 << 27) | (2 << 24) | (1 << 21) | (0b0001 << 17);
        let d = Disassembler::new(&s.machine);
        let instr = d.decode(&[BitVector::from_u64(word, 32)], 0).expect("decodes");
        let dop = &instr.ops[0];
        let op = s.machine.op(dop.op);
        let bindings: Vec<Binding> = dop.args.iter().map(binding_from_operand).collect();
        let frame = Frame { op, bindings: &bindings };
        let mut se_writes = Vec::new();
        exec_stmts(&s.machine, &op.side_effects, frame, &s.state, 1, &mut se_writes)
            .expect("executes");
        let z = s.machine.storage_by_name("Z").expect("Z").0;
        assert_eq!(se_writes.len(), 1);
        assert_eq!(se_writes[0].storage, z);
        assert_eq!(se_writes[0].value.to_u64_lossy(), 1);
    }

    #[test]
    fn overlay_view_merges_partial_writes() {
        let s = setup();
        let acc = s.machine.storage_by_name("ACC").expect("ACC").0;
        let writes = vec![StagedWrite {
            storage: acc,
            index: 0,
            hi: 7,
            lo: 0,
            value: BitVector::from_u64(0xCD, 8),
            latency: 1,
        }];
        let view = OverlayView::new(&s.state, &writes);
        assert_eq!(view.read_cell(acc, 0).to_u64_lossy(), 0x00CD);
    }

    #[test]
    fn malformed_frame_is_a_diagnostic_not_a_panic() {
        let s = setup();
        let d = Disassembler::new(&s.machine);
        let word = (0b00001u64 << 27) | (2 << 24) | (1 << 21) | (0b0011 << 17);
        let instr = d.decode(&[BitVector::from_u64(word, 32)], 0).expect("decodes");
        let op = s.machine.op(instr.ops[0].op);
        // An empty frame: the first parameter reference must surface as
        // a diagnostic, not an index panic.
        let frame = Frame { op, bindings: &[] };
        let mut out = Vec::new();
        let err = exec_stmts(&s.machine, &op.action, frame, &s.state, 1, &mut out)
            .expect_err("missing bindings");
        assert!(matches!(err, ExecError::MissingBinding { .. }), "got {err}");
        assert!(err.to_string().contains("no binding"));
    }

    #[test]
    fn binop_semantics() {
        let a = BitVector::from_u64(0xF0, 8);
        let b = BitVector::from_u64(0x11, 8);
        assert_eq!(eval_binop(BinOp::Add, &a, &b).to_u64_lossy(), 0x01);
        assert_eq!(eval_binop(BinOp::Ult, &b, &a).to_u64_lossy(), 1);
        assert_eq!(eval_binop(BinOp::Slt, &a, &b).to_u64_lossy(), 1); // 0xF0 is negative
        assert_eq!(eval_binop(BinOp::Shl, &b, &BitVector::from_u64(200, 8)).to_u64_lossy(), 0);
        assert_eq!(eval_binop(BinOp::LAnd, &a, &BitVector::zero(8)).to_u64_lossy(), 0);
        assert_eq!(eval_binop(BinOp::LOr, &a, &BitVector::zero(8)).to_u64_lossy(), 1);
    }
}
