//! The XSIM scheduler: sequences instructions, manages breakpoints,
//! dumps execution traces, and accounts cycles (§3.2 item 2).
//!
//! # Cycle model
//!
//! For each executed instruction at cycle *T*:
//!
//! 1. the statically computed stall for its address is charged
//!    (*T += stall*) — ISDL has no explicit pipeline, so stalls are
//!    derived from the static instruction stream (§3.3.3);
//! 2. staged writes whose latency has expired are committed;
//! 3. the *action* RTL of every selected operation executes against
//!    the committed state (reads see cycle-start state);
//! 4. the *side-effect* RTL executes in the same cycle, also against
//!    cycle-start state (descriptions recompute any value they need,
//!    which keeps the simulator bit-identical to the generated
//!    hardware); the paper's "side effects take place after actions"
//!    is honoured in the *write* order — a side-effect write to a cell
//!    an action also wrote wins;
//! 5. all writes are staged with visibility *T + latency*;
//! 6. *T* advances by the instruction's cycle cost (the maximum over
//!    the selected operations);
//! 7. the PC advances by the instruction size unless some operation
//!    wrote it.
//!
//! # Halting
//!
//! Execution stops on: an operation named `halt`; a taken branch to the
//! instruction's own address (the `end: jmp end` idiom); the PC leaving
//! instruction memory; an illegal instruction; a breakpoint; or the
//! caller's cycle budget.

use crate::bytecode::{self, Compiled, Phase};
use crate::exec::{binding_from_operand, exec_stmts, Binding, Frame, StagedWrite};
use crate::hazard;
use crate::state::State;
use crate::translate::{Block, BlockCache, BlockInstr, Fused, TranslateStats};
use bitv::BitVector;
use isdl::model::{Machine, OpRef};
use isdl::rtl::StorageId;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::io::Write;
use std::rc::Rc;
use xasm::{DecodedInstr, Disassembler, Program};

/// Which processing core executes the RTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoreKind {
    /// Direct tree-walking interpretation of the resolved RTL.
    Tree,
    /// Compiled flat bytecode (the analogue of GENSIM's generated C) —
    /// substantially faster; produced lazily per operation.
    #[default]
    Bytecode,
}

/// Options controlling simulator generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XsimOptions {
    /// Processing-core implementation.
    pub core: CoreKind,
    /// Disassemble the whole program off-line at load time (§3.3.2).
    /// When false, each instruction is re-decoded at every fetch — the
    /// ablation for the paper's "off-line to improve speed" claim.
    pub offline_decode: bool,
    /// RTL middle-end level ([`isdl::opt`]); both cores run operation
    /// RTL through the shared optimizer before executing it. Results
    /// are bit-identical at every level; `OptLevel::None` is the
    /// differential baseline.
    pub opt: isdl::opt::OptLevel,
    /// Explicit middle-end pass schedule (`--opt-passes=fold,dead,...`)
    /// overriding the canonical schedule `opt` selects. `None` — the
    /// default — runs the level's schedule.
    pub passes: Option<isdl::opt::PassList>,
    /// Enable the translated basic-block tier: straight-line μ-op
    /// traces keyed by PC, fused once at translation time and
    /// dispatched directly (the specialized/translated simulation step
    /// past the paper's per-instruction compiled core). Only engages
    /// for the bytecode core with off-line decode, no breakpoints, and
    /// a PC wide enough to address all of instruction memory; results
    /// are bit-identical to the interpreter.
    pub translate: bool,
}

impl Default for XsimOptions {
    fn default() -> Self {
        Self {
            core: CoreKind::Bytecode,
            offline_decode: true,
            opt: isdl::opt::OptLevel::default(),
            passes: None,
            translate: true,
        }
    }
}

impl XsimOptions {
    /// The middle-end pipeline these options select: the explicit pass
    /// schedule when one is given, otherwise the canonical schedule
    /// for the level.
    #[must_use]
    pub fn pipeline(&self) -> isdl::opt::Pipeline {
        match self.passes {
            Some(list) => isdl::opt::Pipeline::with_passes(self.opt, list),
            None => isdl::opt::Pipeline::for_level(self.opt),
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// An operation named `halt` executed, or a branch jumped to its
    /// own instruction.
    Halted,
    /// The PC reached a breakpoint.
    Breakpoint(u64),
    /// The cycle budget was exhausted.
    CycleLimit,
    /// The retired-instruction fuel budget was exhausted.
    FuelExhausted,
    /// No operation signature matched the fetched word(s).
    IllegalInstruction(u64),
    /// The PC left instruction memory.
    PcOutOfRange(u64),
    /// RTL execution faulted at `addr` (malformed operand bindings —
    /// see [`crate::exec::ExecError`]). The instruction's writes are
    /// discarded; nothing commits.
    ExecFault {
        /// Address of the faulting instruction.
        addr: u64,
        /// The rendered [`crate::exec::ExecError`] diagnostic.
        message: String,
    },
    /// A cooperative cancellation flag ([`Xsim::set_cancel`]) was
    /// raised — typically by a wall-clock deadline watchdog. The run
    /// stops on an instruction boundary; nothing half-commits, and the
    /// run can be resumed like any other fuel stop.
    Cancelled,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Halted => write!(f, "halted"),
            Self::Breakpoint(a) => write!(f, "breakpoint at {a:#x}"),
            Self::CycleLimit => write!(f, "cycle limit reached"),
            Self::FuelExhausted => write!(f, "instruction fuel exhausted"),
            Self::IllegalInstruction(a) => write!(f, "illegal instruction at {a:#x}"),
            Self::PcOutOfRange(a) => write!(f, "PC out of range at {a:#x}"),
            Self::ExecFault { addr, message } => {
                write!(f, "execution fault at {addr:#x}: {message}")
            }
            Self::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Error generating a simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GensimError {
    /// The machine declares no program counter.
    MissingPc,
    /// The machine declares no instruction memory.
    MissingImem,
    /// The decoder could not be built from the machine's encodings
    /// (inconsistent signature widths — see `xasm::DisasmError`).
    Decoder(String),
}

impl fmt::Display for GensimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingPc => write!(f, "machine has no program-counter storage"),
            Self::MissingImem => write!(f, "machine has no instruction memory"),
            Self::Decoder(m) => write!(f, "cannot build decoder: {m}"),
        }
    }
}

impl std::error::Error for GensimError {}

/// Execution statistics and utilization measurements.
///
/// Per-operation execution counts live on [`Xsim::op_counts`] (they
/// are kept in flat arrays on the simulator's hot path).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total cycles, including stalls.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Stall cycles included in `cycles`.
    pub stall_cycles: u64,
    /// Per field: instructions in which the field executed a non-nop.
    pub field_busy: Vec<u64>,
}

impl Stats {
    /// Fraction of instructions in which field `f` did useful work.
    #[must_use]
    pub fn field_utilization(&self, f: usize) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.field_busy.get(f).copied().unwrap_or(0) as f64 / self.instructions as f64
        }
    }

    /// Instructions retired per cycle (0 when nothing ran). Stall
    /// cycles are included in the denominator, so IPC degrades exactly
    /// as hazards accumulate.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// One architectural write captured by the event trace (committed to
/// state `latency` cycles after the event's cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceWrite {
    /// Target storage.
    pub storage: StorageId,
    /// Cell index (0 for non-addressed storage).
    pub index: u64,
    /// The staged value, bit-true at the storage's width.
    pub value: BitVector,
}

/// One executed instruction captured by the event trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the instruction executed (stalls already
    /// charged).
    pub cycle: u64,
    /// Its address.
    pub pc: u64,
    /// The operation selected in each field, in field order.
    pub ops: Vec<OpRef>,
    /// Register/memory writes staged by the instruction, in commit
    /// order (action writes, then side-effect writes).
    pub writes: Vec<TraceWrite>,
}

/// A bounded ring buffer of [`TraceEvent`]s (§3.2's execution traces,
/// upgraded from bare addresses to full retire records).
///
/// When full, the oldest event is evicted and counted in
/// [`EventTrace::dropped`] — a long run keeps the *tail* of the
/// execution, which is where crashes and divergences live. Recording
/// costs nothing when disabled: the simulator holds `Option<EventTrace>`
/// and the hot loop checks one discriminant.
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl EventTrace {
    /// An empty trace bounded at `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, events: VecDeque::with_capacity(capacity), dropped: 0 }
    }

    /// Maximum retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(&mut self, e: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }
}

/// Why the static stall pass charged an instruction stall cycles: the
/// binding (worst) hazard, attributed to the storage or functional unit
/// the consumer waited on and to the producing instruction's address.
///
/// Ties between equal stalls keep the first cause found (data hazards
/// before usage hazards, program order within each), so attribution is
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// The instruction read a cell whose producing write (latency > 1)
    /// was not yet visible.
    Data {
        /// The storage the consumer waited on.
        storage: StorageId,
        /// Address of the producing instruction.
        producer_pc: u64,
    },
    /// The instruction needed a functional unit (field) still occupied
    /// by an earlier operation's `usage` window.
    Usage {
        /// Index of the occupied field in `machine.fields`.
        field: usize,
        /// Address of the occupying instruction.
        producer_pc: u64,
    },
}

/// Per-PC cycle attribution: how often the instruction at one address
/// issued and how many cycles (split into stall and execute) it was
/// charged. All counters are derived from the same simulated quantities
/// [`Stats`] accumulates, so summing rows reproduces the machine-wide
/// totals exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileRow {
    /// Times the instruction at this address issued.
    pub issues: u64,
    /// Total cycles charged here (stall + execute).
    pub cycles: u64,
    /// Stall cycles included in `cycles`.
    pub stall_cycles: u64,
}

/// The cycle-attribution profile: one [`ProfileRow`] per instruction
/// address, recorded by [`Xsim::step`] when profiling is enabled via
/// [`Xsim::enable_profile`].
///
/// Recording is a handful of integer adds behind one `Option`
/// discriminant check — when profiling is off the hot loop pays one
/// branch and reads no clocks (the PR 2 overhead contract).
#[derive(Debug, Clone, Default)]
pub struct Profile {
    rows: Vec<ProfileRow>,
}

impl Profile {
    fn new(depth: usize) -> Self {
        Self { rows: vec![ProfileRow::default(); depth] }
    }

    /// The per-address rows, indexed by instruction address.
    #[must_use]
    pub fn rows(&self) -> &[ProfileRow] {
        &self.rows
    }

    fn record(&mut self, pc: u64, stall: u32, cycle_cost: u32) {
        if let Some(r) = self.rows.get_mut(pc as usize) {
            r.issues += 1;
            r.cycles += u64::from(stall) + u64::from(cycle_cost);
            r.stall_cycles += u64::from(stall);
        }
    }

    /// A faulting instruction charges its stall (already added to
    /// [`Stats`]) but neither issues nor costs execute cycles.
    fn record_stall_only(&mut self, pc: u64, stall: u32) {
        if let Some(r) = self.rows.get_mut(pc as usize) {
            r.cycles += u64::from(stall);
            r.stall_cycles += u64::from(stall);
        }
    }
}

/// A prepared execution plan for one field slot of an instruction:
/// compiled phases plus the flattened token operands.
#[derive(Debug)]
pub(crate) struct Plan {
    pub(crate) action: Rc<Compiled>,
    /// `None` when the operation has no side effects.
    pub(crate) side_effects: Option<Rc<Compiled>>,
    pub(crate) params: Vec<u64>,
    pub(crate) latency: u32,
}

/// One pre-decoded instruction, ready to execute.
#[derive(Debug)]
pub(crate) struct DecodedEntry {
    pub instr: DecodedInstr,
    pub bindings: Vec<Vec<Binding>>,
    /// Bytecode-core plans, parallel to `instr.ops` (empty for the
    /// tree core).
    pub(crate) plans: Vec<Plan>,
    pub cycle_cost: u32,
    pub stall: u32,
    /// Why the static pass charged `stall` (None when `stall == 0`).
    pub stall_cause: Option<StallCause>,
    /// Whether any selected operation is named `halt`.
    pub halts: bool,
}

/// A generated cycle-accurate, bit-true instruction-level simulator.
///
/// Created by [`Xsim::generate`] from a validated machine — the Rust
/// analogue of GENSIM emitting, compiling, and linking the C simulator
/// sources.
pub struct Xsim<'m> {
    machine: &'m Machine,
    disasm: Disassembler<'m>,
    options: XsimOptions,
    /// The middle-end schedule both cores feed RTL through, resolved
    /// once from the options at generation time.
    pipeline: isdl::opt::Pipeline,
    state: State,
    pc_id: StorageId,
    imem_id: StorageId,
    decoded: Vec<Option<Rc<DecodedEntry>>>,
    bytecode: crate::bytecode::Cache,
    /// Translated basic-block cache (the fused dispatch tier).
    blocks: BlockCache,
    /// Scratch for precise invalidation: the imem cell indices written
    /// by the commits of the current call.
    imem_dirty: Vec<u64>,
    /// Instructions retired through fused block dispatch (the rest
    /// went through the interpreter).
    block_instructions: u64,
    /// Reused scratch buffers for the hot execute loop.
    scratch_regs: Vec<u64>,
    action_buf: Vec<StagedWrite>,
    se_buf: Vec<StagedWrite>,
    /// Flat per-(field, op) execution counters; folded into
    /// `stats.op_counts` lazily by [`Xsim::stats`].
    op_counts: Vec<Vec<u64>>,
    stats: Stats,
    /// Middle-end counters accumulated over every phase optimized for
    /// this simulator (shared by both cores via the bytecode cache).
    opt_stats: isdl::opt::OptStats,
    /// Prepared plans whose RTL exceeded the u64 bytecode lanes and
    /// fell back to tree interpretation.
    wide_fallbacks: u64,
    breakpoints: HashSet<u64>,
    trace: Option<Box<dyn Write + Send>>,
    events: Option<EventTrace>,
    /// Streaming event sink (never drops); fed alongside the ring.
    event_sink: Option<Box<dyn obs::TraceSink>>,
    /// Per-PC cycle attribution, when enabled.
    profile: Option<Box<Profile>>,
    /// Code-section labels of the loaded program, sorted by address —
    /// the region table the profile report aggregates over.
    regions: Vec<(u64, String)>,
    /// Cooperative cancellation flag, checked on every fuel-path
    /// iteration (interpreter steps and translated block heads). Set
    /// by an external watchdog; `None` costs one branch per check.
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    halted: bool,
}

impl fmt::Debug for Xsim<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Xsim")
            .field("machine", &self.machine.name)
            .field("options", &self.options)
            .field("cycles", &self.stats.cycles)
            .finish_non_exhaustive()
    }
}

impl<'m> Xsim<'m> {
    /// Generates a simulator for `machine` with default options.
    ///
    /// # Errors
    ///
    /// [`GensimError::MissingPc`] / [`GensimError::MissingImem`] if the
    /// description lacks the storages simulation needs.
    pub fn generate(machine: &'m Machine) -> Result<Self, GensimError> {
        Self::generate_with(machine, XsimOptions::default())
    }

    /// Generates a simulator with explicit [`XsimOptions`].
    ///
    /// # Errors
    ///
    /// Same as [`Xsim::generate`].
    pub fn generate_with(machine: &'m Machine, options: XsimOptions) -> Result<Self, GensimError> {
        let pc_id = machine.pc.ok_or(GensimError::MissingPc)?;
        let imem_id = machine.imem.ok_or(GensimError::MissingImem)?;
        let depth = machine.storage(imem_id).cells() as usize;
        let disasm =
            Disassembler::try_new(machine).map_err(|e| GensimError::Decoder(e.to_string()))?;
        Ok(Self {
            machine,
            disasm,
            pipeline: options.pipeline(),
            options,
            state: State::new(machine),
            pc_id,
            imem_id,
            decoded: vec![None; depth],
            bytecode: crate::bytecode::Cache::new(),
            blocks: BlockCache::default(),
            imem_dirty: Vec::new(),
            block_instructions: 0,
            scratch_regs: Vec::new(),
            action_buf: Vec::new(),
            se_buf: Vec::new(),
            op_counts: machine.fields.iter().map(|f| vec![0; f.ops.len()]).collect(),
            stats: Stats { field_busy: vec![0; machine.fields.len()], ..Stats::default() },
            opt_stats: isdl::opt::OptStats::default(),
            wide_fallbacks: 0,
            breakpoints: HashSet::new(),
            trace: None,
            events: None,
            event_sink: None,
            profile: None,
            regions: Vec::new(),
            cancel: None,
            halted: false,
        })
    }

    /// Installs a cooperative cancellation flag. When some other
    /// thread (a deadline watchdog, a signal handler) stores `true`,
    /// the next fuel-path check returns [`StopReason::Cancelled`] on a
    /// clean instruction boundary. Pass the same flag to many
    /// simulators to cancel them together.
    pub fn set_cancel(&mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
        self.cancel = Some(flag);
    }

    /// True when the installed cancellation flag (if any) is raised.
    #[inline]
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// The options this simulator was generated with.
    #[must_use]
    pub fn options(&self) -> &XsimOptions {
        &self.options
    }

    /// The machine this simulator was generated from.
    #[must_use]
    pub fn machine(&self) -> &'m Machine {
        self.machine
    }

    /// Read access to the architectural state.
    #[must_use]
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Mutable access to the architectural state (for test setup and
    /// the interactive `set` command).
    pub fn state_mut(&mut self) -> &mut State {
        &mut self.state
    }

    /// Execution statistics so far.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// RTL middle-end counters accumulated so far (one entry per
    /// optimized operation phase; see [`isdl::opt::OptStats`]).
    #[must_use]
    pub fn opt_stats(&self) -> &isdl::opt::OptStats {
        &self.opt_stats
    }

    /// The resolved middle-end pipeline this simulator feeds RTL
    /// through (level plus printable schedule).
    #[must_use]
    pub fn pipeline(&self) -> &isdl::opt::Pipeline {
        &self.pipeline
    }

    /// Number of prepared bytecode plans that fell back to tree
    /// interpretation because a value exceeded 64 bits. Width
    /// narrowing exists to drive this to zero.
    #[must_use]
    pub fn wide_fallbacks(&self) -> u64 {
        self.wide_fallbacks
    }

    /// Translation-tier statistics: whether the translated dispatch is
    /// engaged for the current options, the block-cache counters, and
    /// the dispatch mix (fused vs interpreted retires).
    #[must_use]
    pub fn translate_stats(&self) -> TranslateStats {
        TranslateStats {
            enabled: self.translation_active(),
            blocks: self.blocks.blocks_translated,
            invalidations: self.blocks.invalidations,
            block_instructions: self.block_instructions,
            interp_instructions: self.stats.instructions - self.block_instructions,
            fused_ops_removed: self.blocks.fused_ops_removed,
        }
    }

    /// Whether [`Xsim::run_fuel`] will dispatch through translated
    /// blocks. Translation needs the bytecode core (fusion consumes
    /// bytecode plans), off-line decode (shared static stalls), no
    /// breakpoints (blocks retire several instructions per dispatch),
    /// and a PC that can address every imem word (a truncating PC
    /// falls back to the interpreter's per-step wrap semantics).
    fn translation_active(&self) -> bool {
        if !(self.options.translate
            && self.options.core == CoreKind::Bytecode
            && self.options.offline_decode
            && self.breakpoints.is_empty())
        {
            return false;
        }
        let pc_w = self.machine.storage(self.pc_id).width;
        let depth = self.state.depth(self.imem_id);
        pc_w >= 64 || depth <= (1u64 << pc_w)
    }

    /// Execution count per operation — the utilization statistics the
    /// exploration loop feeds on.
    #[must_use]
    pub fn op_counts(&self) -> HashMap<OpRef, u64> {
        let mut out = HashMap::new();
        for (fi, field) in self.op_counts.iter().enumerate() {
            for (oi, &n) in field.iter().enumerate() {
                if n > 0 {
                    out.insert(OpRef { field: isdl::model::FieldId(fi), op: oi }, n);
                }
            }
        }
        out
    }

    /// The current program counter.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.state.read(self.pc_id, 0).to_u64_lossy()
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u64) {
        let w = self.machine.storage(self.pc_id).width;
        self.state.poke(self.pc_id, 0, BitVector::from_u64(pc, w));
    }

    /// Adds a breakpoint at a word address. Returns whether it was new.
    pub fn add_breakpoint(&mut self, addr: u64) -> bool {
        self.breakpoints.insert(addr)
    }

    /// Removes a breakpoint. Returns whether it existed.
    pub fn remove_breakpoint(&mut self, addr: u64) -> bool {
        self.breakpoints.remove(&addr)
    }

    /// Streams executed instruction addresses to `sink` (the paper's
    /// execution address trace, §3.1).
    pub fn set_trace(&mut self, sink: Box<dyn Write + Send>) {
        self.trace = Some(sink);
    }

    /// Stops tracing and returns the sink.
    pub fn take_trace(&mut self) -> Option<Box<dyn Write + Send>> {
        self.trace.take()
    }

    /// Starts recording a bounded event trace: every executed
    /// instruction's cycle, pc, selected operations, and staged
    /// register/memory writes, in a ring buffer of `capacity` events
    /// (oldest evicted first). Replaces any previous event trace.
    pub fn enable_event_trace(&mut self, capacity: usize) {
        self.events = Some(EventTrace::new(capacity));
    }

    /// The event trace recorded so far, if enabled.
    #[must_use]
    pub fn event_trace(&self) -> Option<&EventTrace> {
        self.events.as_ref()
    }

    /// Stops event tracing and returns the recorded trace.
    pub fn take_event_trace(&mut self) -> Option<EventTrace> {
        self.events.take()
    }

    /// Streams every executed instruction's retire record (the same
    /// JSON object `xsim-trace/1` carries per event) to `sink` as it
    /// happens. Unlike the bounded ring, a streaming sink never drops
    /// events. Replaces any previous sink; coexists with the ring.
    pub fn set_event_sink(&mut self, sink: Box<dyn obs::TraceSink>) {
        self.event_sink = Some(sink);
    }

    /// Stops streaming and returns the sink (flush it before use).
    pub fn take_event_sink(&mut self) -> Option<Box<dyn obs::TraceSink>> {
        self.event_sink.take()
    }

    /// Starts recording the per-PC cycle-attribution profile (issue
    /// counts, cycles, stall cycles per instruction address). Replaces
    /// any previous profile. Disabled profiling costs the hot loop one
    /// branch and zero clock reads.
    pub fn enable_profile(&mut self) {
        let depth = self.state.depth(self.imem_id) as usize;
        self.profile = Some(Box::new(Profile::new(depth)));
    }

    /// The profile recorded so far, if enabled.
    #[must_use]
    pub fn profile(&self) -> Option<&Profile> {
        self.profile.as_deref()
    }

    /// Stops profiling and returns the recorded profile.
    pub fn take_profile(&mut self) -> Option<Profile> {
        self.profile.take().map(|p| *p)
    }

    /// Code-section labels of the loaded program (address-sorted) —
    /// the region boundaries the profile report aggregates over.
    pub(crate) fn regions(&self) -> &[(u64, String)] {
        &self.regions
    }

    /// The decoded entry cached for `addr`, if any.
    pub(crate) fn decoded_entry(&self, addr: u64) -> Option<&Rc<DecodedEntry>> {
        self.decoded.get(addr as usize)?.as_ref()
    }

    /// Flat per-(field, op) execution counts, indexed `[field][op]` —
    /// the raw table behind [`Xsim::op_counts`], used by the stats
    /// report.
    pub(crate) fn op_count_table(&self) -> &[Vec<u64>] {
        &self.op_counts
    }

    /// Loads an assembled program: writes its words into instruction
    /// memory and its `.data` image into data memory, runs the off-line
    /// disassembly pass, computes static stalls, and sets the PC to the
    /// program entry.
    pub fn load_program(&mut self, program: &Program) {
        self.load_words(&program.words);
        if let Some((dm, st)) = self
            .machine
            .storages
            .iter()
            .enumerate()
            .find(|(_, s)| s.kind == isdl::model::StorageKind::DataMemory)
        {
            let width = st.width;
            for &(addr, v) in &program.data {
                self.state.poke(StorageId(dm), addr, BitVector::from_i64(v, width));
            }
        }
        self.regions = program.code_labels.clone();
        self.set_pc(program.entry);
    }

    /// Loads raw instruction words starting at address 0.
    pub fn load_words(&mut self, words: &[BitVector]) {
        self.regions.clear();
        let w = self.machine.word_width;
        let depth = self.state.depth(self.imem_id);
        for (a, word) in words.iter().enumerate().take(depth as usize) {
            self.state.poke(self.imem_id, a as u64, word.trunc(w).zext(w));
        }
        self.decoded = vec![None; depth as usize];
        self.blocks.clear();
        if self.options.offline_decode {
            self.offline_decode_pass(words.len() as u64);
        }
        self.set_pc(0);
        self.halted = false;
    }

    /// Decodes every address reachable by sequential layout, then
    /// computes static stalls (illegal words — e.g. data — stay
    /// undecoded and are skipped for stall purposes).
    ///
    /// Entries are built unshared, annotated with their stall and its
    /// cause, and only then wrapped in `Rc` — there is no aliased
    /// mutation and no panicking `Rc::get_mut` path.
    fn offline_decode_pass(&mut self, len: u64) {
        let mut plain: Vec<Option<DecodedEntry>> = Vec::with_capacity(self.decoded.len());
        plain.resize_with(self.decoded.len(), || None);
        let mut addr = 0u64;
        while addr < len {
            match self.decode_instr(addr) {
                Some(instr) => {
                    let entry = self.build_entry(instr);
                    let size = u64::from(entry.instr.size);
                    plain[addr as usize] = Some(entry);
                    addr += size;
                }
                None => {
                    addr += 1;
                }
            }
        }
        for (addr, stall, cause) in hazard::compute_static_stalls(self.machine, &plain) {
            if let Some(e) = plain[addr as usize].as_mut() {
                e.stall = stall;
                e.stall_cause = Some(cause);
            }
        }
        for (i, e) in plain.into_iter().enumerate() {
            if let Some(e) = e {
                self.decoded[i] = Some(Rc::new(e));
            }
        }
    }

    /// Decodes the raw instruction at `addr` (no execution plans).
    pub(crate) fn decode_instr(&self, addr: u64) -> Option<DecodedInstr> {
        let depth = self.state.depth(self.imem_id);
        if addr >= depth {
            return None;
        }
        let max = u64::from(self.disasm.max_size());
        let mut words = Vec::with_capacity(max as usize);
        for k in 0..max {
            if addr + k < depth {
                words.push(self.state.read(self.imem_id, addr + k).clone());
            }
        }
        self.disasm.decode(&words, addr).ok()
    }

    /// Decodes the instruction at `addr` and prepares its execution
    /// plans.
    fn decode_at(&mut self, addr: u64) -> Option<Rc<DecodedEntry>> {
        let instr = self.decode_instr(addr)?;
        Some(Rc::new(self.build_entry(instr)))
    }

    fn build_entry(&mut self, instr: DecodedInstr) -> DecodedEntry {
        let bindings: Vec<Vec<Binding>> =
            instr.ops.iter().map(|d| d.args.iter().map(binding_from_operand).collect()).collect();
        let cycle_cost =
            instr.ops.iter().map(|d| self.machine.op(d.op).costs.cycle).max().unwrap_or(1);
        let halts = instr.ops.iter().any(|d| self.machine.op(d.op).name == "halt");
        let plans = if self.options.core == CoreKind::Bytecode {
            let mut plans = Vec::with_capacity(instr.ops.len());
            for (d, b) in instr.ops.iter().zip(&bindings) {
                let op = self.machine.op(d.op);
                let action = self.bytecode.prepare(
                    self.machine,
                    d.op,
                    Phase::Action,
                    b,
                    &self.pipeline,
                    &mut self.opt_stats,
                );
                let side_effects = if op.side_effects.is_empty() {
                    None
                } else {
                    Some(self.bytecode.prepare(
                        self.machine,
                        d.op,
                        Phase::SideEffects,
                        b,
                        &self.pipeline,
                        &mut self.opt_stats,
                    ))
                };
                self.wide_fallbacks += u64::from(matches!(*action, bytecode::Compiled::Wide(_)));
                self.wide_fallbacks +=
                    u64::from(matches!(side_effects.as_deref(), Some(bytecode::Compiled::Wide(_))));
                plans.push(Plan {
                    action,
                    side_effects,
                    params: bytecode::flatten_params(b),
                    latency: op.timing.latency,
                });
            }
            plans
        } else {
            Vec::new()
        };
        DecodedEntry { instr, bindings, plans, cycle_cost, stall: 0, stall_cause: None, halts }
    }

    /// Runs until a stop condition, executing at most `max_cycles`
    /// additional cycles (no instruction fuel limit).
    pub fn run(&mut self, max_cycles: u64) -> StopReason {
        self.run_fuel(max_cycles, u64::MAX)
    }

    /// Runs until a stop condition, executing at most `max_cycles`
    /// additional cycles and retiring at most `max_instructions`
    /// additional instructions — the *fuel budget* that keeps a
    /// looping kernel from spinning forever (a low-IPC machine can
    /// burn a large cycle budget very slowly; fuel bounds work done,
    /// not time charged).
    pub fn run_fuel(&mut self, max_cycles: u64, max_instructions: u64) -> StopReason {
        let budget_end = self.stats.cycles.saturating_add(max_cycles);
        let fuel_end = self.stats.instructions.saturating_add(max_instructions);
        if self.translation_active() {
            return self.run_translated(budget_end, fuel_end);
        }
        let mut first = true;
        loop {
            if self.halted {
                return StopReason::Halted;
            }
            if self.stats.cycles >= budget_end {
                return StopReason::CycleLimit;
            }
            if self.stats.instructions >= fuel_end {
                return StopReason::FuelExhausted;
            }
            if self.cancelled() {
                return StopReason::Cancelled;
            }
            if !self.breakpoints.is_empty() {
                let pc = self.pc();
                if !first && self.breakpoints.contains(&pc) {
                    return StopReason::Breakpoint(pc);
                }
            }
            first = false;
            if let Some(stop) = self.step() {
                return stop;
            }
        }
    }

    /// Commits writes due at `cycle`. A committed write that landed in
    /// instruction memory *precisely* invalidates the decoded entries
    /// and translated blocks whose fetch window covers the written
    /// cell — an instruction may read up to `max_size` words, so a
    /// store to cell `i` affects decodes starting anywhere in
    /// `[i - (max_size - 1), i]`.
    fn commit_and_invalidate(&mut self, cycle: u64) {
        if !self.state.has_due(cycle) {
            return;
        }
        let mut dirty = std::mem::take(&mut self.imem_dirty);
        dirty.clear();
        self.state.commit_due_collecting(cycle, self.imem_id, &mut dirty);
        if !dirty.is_empty() {
            let max = u64::from(self.disasm.max_size());
            for &i in &dirty {
                let lo = i.saturating_sub(max - 1) as usize;
                for e in &mut self.decoded[lo..=(i as usize)] {
                    *e = None;
                }
                self.blocks.invalidate_write(i, max);
            }
        }
        self.imem_dirty = dirty;
    }

    /// Fetch/decode at `pc` (off-line cache, or per-fetch decode).
    fn fetch_entry(&mut self, pc: u64) -> Result<Rc<DecodedEntry>, StopReason> {
        if self.options.offline_decode {
            if let Some(e) = &self.decoded[pc as usize] {
                return Ok(Rc::clone(e));
            }
            match self.decode_at(pc) {
                Some(e) => {
                    self.decoded[pc as usize] = Some(Rc::clone(&e));
                    Ok(e)
                }
                None => Err(StopReason::IllegalInstruction(pc)),
            }
        } else {
            self.decode_at(pc).ok_or(StopReason::IllegalInstruction(pc))
        }
    }

    /// Executes one instruction. Returns a stop reason if execution
    /// cannot continue.
    #[allow(clippy::missing_panics_doc)]
    pub fn step(&mut self) -> Option<StopReason> {
        if self.halted {
            return Some(StopReason::Halted);
        }
        let pc = self.pc();
        let depth = self.state.depth(self.imem_id);
        if pc >= depth {
            return Some(StopReason::PcOutOfRange(pc));
        }

        // A store into instruction memory that became due at the end
        // of the previous cycle must be visible to *this* fetch.
        self.commit_and_invalidate(self.stats.cycles);

        let entry = match self.fetch_entry(pc) {
            Ok(e) => e,
            Err(stop) => return Some(stop),
        };
        self.exec_entry(pc, &entry)
    }

    /// Executes one fetched instruction through the interpreter: stall
    /// charge, due-write commit, both RTL phases, write staging,
    /// tracing, and retirement.
    fn exec_entry(&mut self, pc: u64, entry: &Rc<DecodedEntry>) -> Option<StopReason> {
        // 1. Charge static stalls.
        self.stats.cycles += u64::from(entry.stall);
        self.stats.stall_cycles += u64::from(entry.stall);
        let t = self.stats.cycles;

        // 2. Commit writes whose latency has expired.
        self.commit_and_invalidate(t);

        // 3-5. Execute both phases and stage writes. An ExecError in
        // either phase discards the instruction's writes and surfaces
        // as a stop reason — nothing half-commits.
        let mut fault: Option<crate::exec::ExecError> = None;
        let mut action_writes = std::mem::take(&mut self.action_buf);
        action_writes.clear();
        match self.options.core {
            CoreKind::Bytecode => {
                for (i, plan) in entry.plans.iter().enumerate() {
                    let d = &entry.instr.ops[i];
                    if let Err(e) = bytecode::exec_compiled(
                        &plan.action,
                        self.machine,
                        self.machine.op(d.op),
                        &entry.bindings[i],
                        &plan.params,
                        &self.state,
                        &[],
                        plan.latency,
                        &mut action_writes,
                        &mut self.scratch_regs,
                    ) {
                        fault = Some(e);
                        break;
                    }
                }
            }
            CoreKind::Tree => {
                for (d, b) in entry.instr.ops.iter().zip(&entry.bindings) {
                    let op = self.machine.op(d.op);
                    // The tree core shares the bytecode cache's
                    // optimized-RTL table: same (op, phase) entry, same
                    // middle-end stats, no double optimization.
                    let stmts = self.bytecode.optimized(
                        self.machine,
                        d.op,
                        Phase::Action,
                        &self.pipeline,
                        &mut self.opt_stats,
                    );
                    let frame = Frame { op, bindings: b };
                    if let Err(e) = exec_stmts(
                        self.machine,
                        &stmts,
                        frame,
                        &self.state,
                        op.timing.latency,
                        &mut action_writes,
                    ) {
                        fault = Some(e);
                        break;
                    }
                }
            }
        }
        let mut se_writes = std::mem::take(&mut self.se_buf);
        se_writes.clear();
        if fault.is_none() {
            match self.options.core {
                CoreKind::Bytecode => {
                    for (i, plan) in entry.plans.iter().enumerate() {
                        let Some(side) = &plan.side_effects else { continue };
                        let d = &entry.instr.ops[i];
                        if let Err(e) = bytecode::exec_compiled(
                            side,
                            self.machine,
                            self.machine.op(d.op),
                            &entry.bindings[i],
                            &plan.params,
                            &self.state,
                            &[],
                            plan.latency,
                            &mut se_writes,
                            &mut self.scratch_regs,
                        ) {
                            fault = Some(e);
                            break;
                        }
                    }
                }
                CoreKind::Tree => {
                    for (d, b) in entry.instr.ops.iter().zip(&entry.bindings) {
                        let op = self.machine.op(d.op);
                        if op.side_effects.is_empty() {
                            continue;
                        }
                        let stmts = self.bytecode.optimized(
                            self.machine,
                            d.op,
                            Phase::SideEffects,
                            &self.pipeline,
                            &mut self.opt_stats,
                        );
                        let frame = Frame { op, bindings: b };
                        if let Err(e) = exec_stmts(
                            self.machine,
                            &stmts,
                            frame,
                            &self.state,
                            op.timing.latency,
                            &mut se_writes,
                        ) {
                            fault = Some(e);
                            break;
                        }
                    }
                }
            }
        }
        if let Some(e) = fault {
            action_writes.clear();
            se_writes.clear();
            self.action_buf = action_writes;
            self.se_buf = se_writes;
            // The stall was already charged to Stats above; mirror it
            // so per-PC sums stay exact even on the fault path.
            if let Some(p) = &mut self.profile {
                p.record_stall_only(pc, entry.stall);
            }
            return Some(StopReason::ExecFault { addr: pc, message: e.to_string() });
        }
        let mut pc_written = false;
        let mut traced_writes = Vec::new();
        let tracing = self.events.is_some() || self.event_sink.is_some();
        for w in action_writes.drain(..).chain(se_writes.drain(..)) {
            if w.storage == self.pc_id {
                pc_written = true;
            }
            if tracing {
                traced_writes.push(TraceWrite {
                    storage: w.storage,
                    index: w.index,
                    value: w.value.clone(),
                });
            }
            self.state.stage_write(
                w.storage,
                w.index,
                w.hi,
                w.lo,
                w.value,
                t + u64::from(w.latency),
            );
        }
        self.action_buf = action_writes;
        self.se_buf = se_writes;
        if tracing {
            let event = TraceEvent {
                cycle: t,
                pc,
                ops: entry.instr.ops.iter().map(|d| d.op).collect(),
                writes: traced_writes,
            };
            if let Some(sink) = &mut self.event_sink {
                sink.record(crate::report::event_json(self.machine, &event));
            }
            if let Some(events) = &mut self.events {
                events.push(event);
            }
        }

        self.retire_entry(pc, entry, pc_written)
    }

    /// The shared retirement tail of both dispatch tiers: bookkeeping,
    /// profile/trace recording, time advance, and PC update.
    fn retire_entry(
        &mut self,
        pc: u64,
        entry: &DecodedEntry,
        pc_written: bool,
    ) -> Option<StopReason> {
        // Bookkeeping (flat counters; folded into Stats lazily).
        for (fi, d) in entry.instr.ops.iter().enumerate() {
            self.op_counts[fi][d.op.op] += 1;
            if Some(d.op.op) != self.machine.fields[fi].nop {
                self.stats.field_busy[fi] += 1;
            }
        }
        self.stats.instructions += 1;
        if let Some(p) = &mut self.profile {
            p.record(pc, entry.stall, entry.cycle_cost);
        }
        if let Some(tr) = &mut self.trace {
            let _ = writeln!(tr, "{pc:#x}");
        }

        // 6. Advance time.
        self.stats.cycles += u64::from(entry.cycle_cost);

        // 7. Advance or redirect the PC.
        if pc_written {
            // Make the branch visible now so `pc()` is coherent; its
            // visibility cycle has been charged via the cycle cost. A
            // branch write never lands in imem, but another write
            // committing at the same cycle may — invalidate precisely.
            self.commit_and_invalidate(self.stats.cycles);
            if self.pc() == pc {
                // `end: jmp end` idiom. Hardware would keep spinning
                // here while in-flight (latency > 1) results land, so
                // retire everything still pending.
                self.commit_and_invalidate(u64::MAX);
                self.halted = true;
                return Some(StopReason::Halted);
            }
        } else {
            self.set_pc(pc + u64::from(entry.instr.size));
        }

        if entry.halts {
            self.commit_and_invalidate(u64::MAX);
            self.halted = true;
            return Some(StopReason::Halted);
        }
        None
    }

    /// Translates the basic block starting at `start`: walks the
    /// sequential instruction stream, fusing each instruction's plans,
    /// until a control-flow redirect, a potential self-modifying
    /// store, a halt, an undecodable word, or the block length cap.
    /// Returns `None` when even the first word fails to decode.
    fn translate_block(&mut self, start: u64) -> Option<Rc<Block>> {
        /// Straight-line trace cap: long enough to swallow unrolled
        /// kernels, short enough to bound mid-block budget overshoot.
        const MAX_BLOCK_INSTRS: usize = 64;
        let depth = self.state.depth(self.imem_id);
        let mut instrs: Vec<BlockInstr> = Vec::new();
        let mut raw_writes: Vec<StorageId> = Vec::new();
        let mut addr = start;
        let mut end = start;
        while addr < depth && instrs.len() < MAX_BLOCK_INSTRS {
            let Ok(entry) = self.fetch_entry(addr) else { break };
            raw_writes.clear();
            for (d, b) in entry.instr.ops.iter().zip(&entry.bindings) {
                hazard::collect_raw_writes(self.machine, self.machine.op(d.op), b, &mut raw_writes);
            }
            // Anything that can redirect control or rewrite code ends
            // the block (conservatively: writes under `If` count).
            let terminator = entry.halts
                || raw_writes.contains(&self.pc_id)
                || raw_writes.contains(&self.imem_id);
            let fused = crate::translate::fuse_entry(&entry, &mut self.blocks.fused_ops_removed);
            end = addr + u64::from(entry.instr.size);
            instrs.push(BlockInstr { pc: addr, entry, fused });
            addr = end;
            if terminator {
                break;
            }
        }
        if instrs.is_empty() {
            return None;
        }
        let block = Rc::new(Block { start, end, instrs });
        self.blocks.insert(Rc::clone(&block));
        Some(block)
    }

    /// The translated dispatch loop: fetches (translating on miss) the
    /// block at the current PC and retires its instructions back to
    /// back, re-checking budgets, due commits, and block validity
    /// between instructions so semantics match the interpreter
    /// bit-for-bit.
    fn run_translated(&mut self, budget_end: u64, fuel_end: u64) -> StopReason {
        let depth = self.state.depth(self.imem_id);
        'dispatch: loop {
            if self.halted {
                return StopReason::Halted;
            }
            if self.stats.cycles >= budget_end {
                return StopReason::CycleLimit;
            }
            if self.stats.instructions >= fuel_end {
                return StopReason::FuelExhausted;
            }
            if self.cancelled() {
                return StopReason::Cancelled;
            }
            let pc = self.pc();
            if pc >= depth {
                return StopReason::PcOutOfRange(pc);
            }
            // Same pre-fetch visibility rule as the interpreter.
            self.commit_and_invalidate(self.stats.cycles);
            let block = match self.blocks.get(pc) {
                Some(b) => b,
                None => match self.translate_block(pc) {
                    Some(b) => b,
                    None => return StopReason::IllegalInstruction(pc),
                },
            };
            let mut generation = self.blocks.generation;
            for (i, bi) in block.instrs.iter().enumerate() {
                if i > 0 {
                    // The dispatch preamble ran for the block head
                    // only; later instructions re-check it here.
                    if self.stats.cycles >= budget_end || self.stats.instructions >= fuel_end {
                        continue 'dispatch;
                    }
                    self.commit_and_invalidate(self.stats.cycles);
                    // `contains` is only worth asking when some block
                    // was dropped since the last check (generation
                    // moved).
                    if self.blocks.generation != generation {
                        if !self.blocks.contains(block.start) {
                            // A latent store invalidated this very
                            // block mid-flight: re-dispatch so the next
                            // fetch sees the rewritten code.
                            continue 'dispatch;
                        }
                        generation = self.blocks.generation;
                    }
                }
                if let Some(stop) = self.exec_block_instr(bi) {
                    return stop;
                }
            }
        }
    }

    /// Retires one block instruction through the fused trace, or the
    /// interpreter when the instruction could not be fused (wide RTL).
    fn exec_block_instr(&mut self, bi: &BlockInstr) -> Option<StopReason> {
        match &bi.fused {
            Some(f) => self.exec_fused(bi.pc, &bi.entry, f),
            None => {
                let entry = Rc::clone(&bi.entry);
                self.exec_entry(bi.pc, &entry)
            }
        }
    }

    /// The fused fast path of [`Xsim::exec_entry`]: one flat μ-op
    /// trace replaces plan iteration, parameter reads, and per-write
    /// latency resolution. Staging order, trace records, and
    /// retirement are identical to the interpreter.
    fn exec_fused(
        &mut self,
        pc: u64,
        entry: &Rc<DecodedEntry>,
        fused: &Fused,
    ) -> Option<StopReason> {
        self.stats.cycles += u64::from(entry.stall);
        self.stats.stall_cycles += u64::from(entry.stall);
        let t = self.stats.cycles;
        self.commit_and_invalidate(t);

        let mut writes = std::mem::take(&mut self.action_buf);
        writes.clear();
        crate::translate::run_fused(fused, &self.state, &mut writes, &mut self.scratch_regs);

        let mut pc_written = false;
        let tracing = self.events.is_some() || self.event_sink.is_some();
        let mut traced_writes = Vec::new();
        for w in writes.drain(..) {
            if w.storage == self.pc_id {
                pc_written = true;
            }
            if tracing {
                traced_writes.push(TraceWrite {
                    storage: w.storage,
                    index: w.index,
                    value: w.value.clone(),
                });
            }
            self.state.stage_write(
                w.storage,
                w.index,
                w.hi,
                w.lo,
                w.value,
                t + u64::from(w.latency),
            );
        }
        self.action_buf = writes;
        if tracing {
            let event = TraceEvent {
                cycle: t,
                pc,
                ops: entry.instr.ops.iter().map(|d| d.op).collect(),
                writes: traced_writes,
            };
            if let Some(sink) = &mut self.event_sink {
                sink.record(crate::report::event_json(self.machine, &event));
            }
            if let Some(events) = &mut self.events {
                events.push(event);
            }
        }
        self.block_instructions += 1;
        self.retire_entry(pc, entry, pc_written)
    }

    /// Clears the halted flag and jumps to `pc`, keeping the decoded
    /// program, state, and statistics — the cheap way to re-enter a
    /// program after a halt (used by benchmarking loops).
    pub fn restart_at(&mut self, pc: u64) {
        self.halted = false;
        self.state.clear_pending();
        self.set_pc(pc);
    }

    /// Resets state, statistics, and the halted flag; keeps the loaded
    /// program, breakpoints, and monitors. The program must be
    /// reloaded via [`Self::load_program`] to restore instruction
    /// memory contents if the run modified them.
    pub fn reset(&mut self) {
        self.state.reset();
        // Reset wipes instruction memory, so translated blocks are
        // stale; counters restart with the stats they feed.
        self.blocks = BlockCache::default();
        self.block_instructions = 0;
        self.stats = Stats { field_busy: vec![0; self.machine.fields.len()], ..Stats::default() };
        for f in &mut self.op_counts {
            f.iter_mut().for_each(|n| *n = 0);
        }
        if let Some(events) = &mut self.events {
            *events = EventTrace::new(events.capacity());
        }
        if let Some(p) = &mut self.profile {
            **p = Profile::new(p.rows.len());
        }
        self.halted = false;
    }

    /// Formats the instruction at `addr` as assembly text, if it
    /// decodes.
    #[must_use]
    pub fn disassemble_at(&self, addr: u64) -> Option<String> {
        let i = self.decode_instr(addr)?;
        Some(self.disasm.format_instr(&i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xasm::Assembler;

    fn acc16() -> Machine {
        isdl::load(isdl::samples::ACC16).expect("loads")
    }

    fn toy() -> Machine {
        isdl::load(isdl::samples::TOY).expect("loads")
    }

    fn run_acc16(src: &str, opts: XsimOptions) -> (Machine, Stats, Vec<u64>) {
        let m = acc16();
        let p = Assembler::new(&m).assemble(src).expect("assembles");
        let mut sim = Xsim::generate_with(&m, opts).expect("generates");
        sim.load_program(&p);
        let stop = sim.run(100_000);
        assert_eq!(stop, StopReason::Halted, "program should halt");
        let dm = m.storage_by_name("DM").expect("DM").0;
        let dump: Vec<u64> =
            (0..sim.state().depth(dm)).map(|i| sim.state().read_u64(dm, i)).collect();
        let stats = sim.stats().clone();
        (m, stats, dump)
    }

    const SUM_LOOP: &str = "\
start: ldi 10
       sta 1          ; counter = 10
loop:  lda 0
       addm 1         ; acc = sum + counter
       sta 0
       lda 1
       subm one
       sta 1
       jnz loop
       halt
.data
.org 60
one:   .word 1
";

    #[test]
    fn loop_program_computes_sum() {
        let (_, stats, dump) = run_acc16(SUM_LOOP, XsimOptions::default());
        assert_eq!(dump[0], 55, "sum of 10..1");
        assert_eq!(dump[1], 0, "counter exhausted");
        assert!(stats.instructions > 50);
        assert_eq!(stats.cycles, stats.instructions, "acc16 has no stalls");
    }

    #[test]
    fn tree_and_bytecode_cores_agree() {
        let opts_tree = XsimOptions { core: CoreKind::Tree, ..XsimOptions::default() };
        let opts_byte = XsimOptions { core: CoreKind::Bytecode, ..XsimOptions::default() };
        let (_, s1, d1) = run_acc16(SUM_LOOP, opts_tree);
        let (_, s2, d2) = run_acc16(SUM_LOOP, opts_byte);
        assert_eq!(d1, d2, "state must be bit-identical");
        assert_eq!(s1.cycles, s2.cycles);
        assert_eq!(s1.instructions, s2.instructions);
    }

    #[test]
    fn online_decode_matches_offline() {
        let off = XsimOptions { core: CoreKind::Bytecode, ..XsimOptions::default() };
        let on = XsimOptions {
            core: CoreKind::Bytecode,
            offline_decode: false,
            ..XsimOptions::default()
        };
        let (_, s1, d1) = run_acc16(SUM_LOOP, off);
        let (_, s2, d2) = run_acc16(SUM_LOOP, on);
        assert_eq!(d1, d2);
        // Off-line decode also feeds the static stall pass; acc16 ops all
        // have latency 1 so cycle counts agree either way.
        assert_eq!(s1.cycles, s2.cycles);
    }

    #[test]
    fn toy_vliw_parallel_execution() {
        let m = toy();
        // li loads 5 into R1; next instruction does an ALU add and a
        // parallel move of the OLD R2 (0) into R4.
        let src = "li R1, 5\nli R2, 7\nadd R3, R1, reg(R2) | mv R4, R2\nToyEnd: jmp ToyEnd\n";
        let p = Assembler::new(&m).assemble(src).expect("assembles");
        let mut sim = Xsim::generate(&m).expect("generates");
        sim.load_program(&p);
        assert_eq!(sim.run(1000), StopReason::Halted, "self-jump halts");
        let rf = m.storage_by_name("RF").expect("RF").0;
        assert_eq!(sim.state().read_u64(rf, 3), 12);
        assert_eq!(sim.state().read_u64(rf, 4), 7);
        assert_eq!(sim.stats().field_busy[1], 1, "MOVE field busy once");
    }

    #[test]
    fn load_use_stall_is_charged() {
        let m = toy();
        // ld has latency 2 / stall 1: using the result immediately costs
        // one stall cycle.
        let with_hazard = "ld R1, 0\nadd R2, R1, reg(R1)\nE: jmp E\n";
        let without = "ld R1, 0\nnop\nadd R2, R1, reg(R1)\nE: jmp E\n";
        let run = |src: &str| {
            let p = Assembler::new(&m).assemble(src).expect("assembles");
            let mut sim = Xsim::generate(&m).expect("generates");
            let dm = m.storage_by_name("DM").expect("DM").0;
            sim.load_program(&p);
            sim.state_mut().poke(dm, 0, bitv::BitVector::from_u64(21, 16));
            assert_eq!(sim.run(1000), StopReason::Halted);
            let rf = m.storage_by_name("RF").expect("RF").0;
            (sim.stats().clone(), sim.state().read_u64(rf, 2))
        };
        let (s1, r2_hazard) = run(with_hazard);
        let (s2, r2_clean) = run(without);
        assert_eq!(r2_hazard, 42, "stall makes the loaded value visible");
        assert_eq!(r2_clean, 42);
        assert_eq!(s1.stall_cycles, 1, "one load-use stall");
        assert_eq!(s2.stall_cycles, 0, "nop fills the delay slot");
    }

    #[test]
    fn mac_accumulates_with_latency() {
        let m = toy();
        let src = "\
li R1, 3
li R2, 4
clracc
mac R1, R2
mac R1, R2
nop
mvacc R5
E: jmp E
";
        let p = Assembler::new(&m).assemble(src).expect("assembles");
        let mut sim = Xsim::generate(&m).expect("generates");
        sim.load_program(&p);
        assert_eq!(sim.run(1000), StopReason::Halted);
        let rf = m.storage_by_name("RF").expect("RF").0;
        assert_eq!(sim.state().read_u64(rf, 5), 24, "two MACs of 3*4");
        assert!(sim.stats().stall_cycles >= 1, "back-to-back MAC stalls");
    }

    #[test]
    fn nt_destination_store() {
        let m = isdl::load(
            r#"
            machine "m" { format { word 8; } }
            storage { imem IM 8 x 32; pc PC 5; register A 8; regfile RF 8 x 4; dmem DM 8 x 16; }
            tokens { token REG reg("R", 4); }
            nonterminals {
                nonterminal DST width 3 {
                    option reg(r: REG) { encode { val[2] = 0; val[1:0] = r; } value { RF[r] } }
                    option mem(r: REG) { encode { val[2] = 1; val[1:0] = r; } value { DM[trunc(RF[r], 4)] } }
                }
            }
            field F {
                op st(d: DST) { encode { word[7:4] = 0b1000; word[2:0] = d; } action { d <- A; } }
                op seta() { encode { word[7:4] = 0b0001; } action { A <- 8'd99; } }
                op halt() { encode { word[7:4] = 0b1111; } }
                op nop() { encode { word[7:4] = 0b0000; } }
            }
            "#,
        )
        .expect("loads");
        let p =
            Assembler::new(&m).assemble("seta\nst reg(R2)\nst mem(R0)\nhalt\n").expect("assembles");
        for core in [CoreKind::Tree, CoreKind::Bytecode] {
            let mut sim = Xsim::generate_with(&m, XsimOptions { core, ..XsimOptions::default() })
                .expect("generates");
            sim.load_program(&p);
            assert_eq!(sim.run(100), StopReason::Halted);
            let rf = m.storage_by_name("RF").expect("RF").0;
            let dm = m.storage_by_name("DM").expect("DM").0;
            assert_eq!(sim.state().read_u64(rf, 2), 99, "core {core:?}");
            assert_eq!(sim.state().read_u64(dm, 0), 99, "core {core:?}");
        }
    }

    #[test]
    fn trace_records_addresses() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct SharedSink(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("sink lock").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let m = acc16();
        let p = Assembler::new(&m).assemble("ldi 1\nldi 2\nhalt\n").expect("assembles");
        let mut sim = Xsim::generate(&m).expect("generates");
        sim.load_program(&p);
        let sink = SharedSink::default();
        sim.set_trace(Box::new(sink.clone()));
        assert_eq!(sim.run(100), StopReason::Halted);
        let text = String::from_utf8(sink.0.lock().expect("sink lock").clone()).expect("utf8");
        assert_eq!(text, "0x0\n0x1\n0x2\n");
    }

    #[test]
    fn breakpoint_stops_and_resumes() {
        let m = acc16();
        let p = Assembler::new(&m).assemble("ldi 1\nldi 2\nldi 3\nhalt\n").expect("assembles");
        let mut sim = Xsim::generate(&m).expect("generates");
        sim.load_program(&p);
        sim.add_breakpoint(1);
        assert_eq!(sim.run(100), StopReason::Breakpoint(1));
        assert_eq!(sim.pc(), 1);
        assert_eq!(sim.run(100), StopReason::Halted, "resume past breakpoint");
    }

    #[test]
    fn cycle_limit() {
        let m = acc16();
        let p =
            Assembler::new(&m).assemble("loop: jmp loop2\nloop2: jmp loop\n").expect("assembles");
        let mut sim = Xsim::generate(&m).expect("generates");
        sim.load_program(&p);
        assert_eq!(sim.run(50), StopReason::CycleLimit);
        assert!(sim.stats().cycles >= 50);
    }

    #[test]
    fn fuel_budget_stops_a_looping_kernel() {
        let m = acc16();
        let p =
            Assembler::new(&m).assemble("loop: jmp loop2\nloop2: jmp loop\n").expect("assembles");
        let mut sim = Xsim::generate(&m).expect("generates");
        sim.load_program(&p);
        assert_eq!(sim.run_fuel(u64::MAX, 25), StopReason::FuelExhausted);
        assert_eq!(sim.stats().instructions, 25, "fuel bounds retired instructions exactly");
        // Refuelling resumes where the run stopped.
        assert_eq!(sim.run_fuel(u64::MAX, 5), StopReason::FuelExhausted);
        assert_eq!(sim.stats().instructions, 30);
    }

    #[test]
    fn illegal_instruction_stops() {
        let m = acc16();
        // 0b1001 is an undefined opcode in acc16.
        let mut sim = Xsim::generate(&m).expect("generates");
        sim.load_words(&[bitv::BitVector::from_u64(0b1001 << 12, 16)]);
        assert_eq!(sim.run(10), StopReason::IllegalInstruction(0));
    }

    #[test]
    fn pc_wraps_when_it_cannot_leave_imem() {
        // acc16 has an 8-bit PC over a 256-word imem: the PC wraps and
        // execution re-enters address 0 — architecturally accurate.
        let m = acc16();
        let p = Assembler::new(&m).assemble("ldi 1\n").expect("assembles");
        let mut sim = Xsim::generate(&m).expect("generates");
        sim.load_program(&p);
        assert_eq!(sim.run(1000), StopReason::CycleLimit);
        assert!(sim.pc() < 256);
    }

    #[test]
    fn pc_out_of_range_stops() {
        // A PC wider than instruction memory can walk off the end.
        let m = isdl::load(
            r#"machine "m" { format { word 8; } }
               storage { imem IM 8 x 16; pc PC 8; register A 8; }
               field F {
                   op inc() { encode { word[7:4] = 0b0001; } action { A <- A + 8'd1; } }
                   op nop() { encode { word[7:4] = 0b0000; } }
               }"#,
        )
        .expect("loads");
        let p = Assembler::new(&m).assemble("inc\n").expect("assembles");
        let mut sim = Xsim::generate(&m).expect("generates");
        sim.load_program(&p);
        assert_eq!(sim.run(1000), StopReason::PcOutOfRange(16));
    }

    #[test]
    fn reset_preserves_program() {
        let m = acc16();
        let p = Assembler::new(&m).assemble("ldi 5\nhalt\n").expect("assembles");
        let mut sim = Xsim::generate(&m).expect("generates");
        sim.load_program(&p);
        assert_eq!(sim.run(100), StopReason::Halted);
        sim.reset();
        assert_eq!(sim.stats().cycles, 0);
        // Instruction memory was cleared by reset; reload to run again.
        sim.load_program(&p);
        assert_eq!(sim.run(100), StopReason::Halted);
        let acc = m.storage_by_name("ACC").expect("ACC").0;
        assert_eq!(sim.state().read_u64(acc, 0), 5);
    }

    #[test]
    fn missing_pc_reported() {
        let m = isdl::load(
            r#"machine "m" { format { word 8; } }
               storage { imem IM 8 x 8; }
               field F { op nop() { encode { word[0] = 1; } } }"#,
        )
        .expect("loads");
        assert_eq!(Xsim::generate(&m).err(), Some(GensimError::MissingPc));
    }
}

#[cfg(test)]
mod usage_tests {
    use super::*;
    use xasm::Assembler;

    /// A machine whose `div` occupies its unit for 3 cycles
    /// (`usage 3`), exposing the structural-hazard path of the static
    /// stall analysis.
    const USAGE_MACHINE: &str = r#"
        machine "usage" { format { word 16; } }
        storage { imem IM 16 x 32; pc PC 5; regfile RF 16 x 4; }
        tokens { token REG reg("R", 4); }
        field F {
            op div(d: REG, a: REG, b: REG) {
                encode { word[15:12] = 0b0001; word[11:10] = d; word[9:8] = a; word[7:6] = b; }
                action { RF[d] <- RF[a] / RF[b]; }
                cost { cycle 1; stall 2; }
                timing { latency 1; usage 3; }
            }
            op li(d: REG, v: REG) {
                encode { word[15:12] = 0b0010; word[11:10] = d; word[9:8] = v; }
                action { RF[d] <- zext(v, 16); }
            }
            op nop() { encode { word[15:12] = 0b0000; } }
        }
        // Halt lives in its own field so it never competes for F's
        // functional unit (usage hazards are per field).
        field CTRL {
            op halt() { encode { word[5:4] = 0b01; } }
            op nop() { encode { word[5:4] = 0b00; } }
        }
    "#;

    #[test]
    fn usage_serialises_back_to_back_unit_uses() {
        let m = isdl::load(USAGE_MACHINE).expect("loads");
        let run = |src: &str| {
            let p = Assembler::new(&m).assemble(src).expect("assembles");
            let mut sim = Xsim::generate(&m).expect("generates");
            sim.load_program(&p);
            assert_eq!(sim.run(1_000), StopReason::Halted);
            sim.stats().clone()
        };
        // Back-to-back divides on a usage-3 unit: the second stalls
        // (clamped by the declared stall cost of 2).
        // (`li d, s` loads the numeric index of register `s`.)
        let busy = run("li R1, R3\nli R2, R1\ndiv R3, R1, R2\ndiv R0, R1, R2\nhalt\n");
        assert_eq!(busy.stall_cycles, 2, "usage hazard charged");
        // A nop between them reduces the stall by one cycle.
        let spaced = run("li R1, R3\nli R2, R1\ndiv R3, R1, R2\nnop\ndiv R0, R1, R2\nhalt\n");
        assert_eq!(spaced.stall_cycles, 1);
        // Two intervening instructions clear the hazard entirely.
        let clear = run("li R1, R3\nli R2, R1\ndiv R3, R1, R2\nnop\nnop\ndiv R0, R1, R2\nhalt\n");
        assert_eq!(clear.stall_cycles, 0);
    }
}
