//! End-to-end tests for the `xsim` binary: run a fixture program and
//! validate the emitted `xsim-stats/1` / `xsim-trace/1` JSON against
//! the invariants documented in `docs/OBSERVABILITY.md`.

use obs::Json;
use std::io::Write as _;
use std::process::Command;

fn xsim(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_xsim")).args(args).output().expect("xsim runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xsim-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

const PROG: &str = "ldi 7\naddm ten\nsta 0\nhalt\n.data\n.org 20\nten: .word 10\n";

fn fixture_paths() -> (String, String) {
    let machine = write_temp("acc16.isdl", isdl::samples::ACC16);
    let prog = write_temp("prog.asm", PROG);
    (machine.to_str().expect("utf8 path").to_owned(), prog.to_str().expect("utf8 path").to_owned())
}

#[test]
fn stats_report_matches_documented_invariants() {
    let (machine, prog) = fixture_paths();
    let (stdout, stderr, ok) = xsim(&[&machine, &prog, "--stats", "-"]);
    assert!(ok, "stderr: {stderr}");
    let json = Json::parse(&stdout).expect("stdout is pure JSON");
    assert_eq!(json.get_str("schema"), Some(gensim::STATS_SCHEMA));
    assert_eq!(json.get_str("machine"), Some("acc16"));
    assert_eq!(json.get_str("stop"), Some("halted"));

    let cycles = json.get_u64("cycles").expect("cycles");
    let instructions = json.get_u64("instructions").expect("instructions");
    let ipc = json.get_f64("ipc").expect("ipc");
    assert_eq!(cycles, 4);
    assert!((ipc - instructions as f64 / cycles as f64).abs() < 1e-12);

    // Per-field retire counts sum to instructions retired.
    for field in json.get("fields").and_then(|f| f.as_arr()).expect("fields") {
        let retired: u64 = field
            .get("ops")
            .and_then(|o| o.as_arr())
            .expect("ops")
            .iter()
            .map(|o| o.get_u64("retired").expect("retired"))
            .sum();
        assert_eq!(retired, instructions);
    }

    // The CLI's phase timers ride along.
    let timing = json.get("timing_us").expect("timing_us");
    for phase in ["load", "assemble", "generate", "run"] {
        assert!(timing.get_f64(phase).is_some(), "timing_us.{phase} present");
    }

    // The human summary moved to stderr to keep stdout parseable.
    assert!(stderr.contains("stopped: halted"), "stderr: {stderr}");
}

#[test]
fn trace_report_is_written_to_file() {
    let (machine, prog) = fixture_paths();
    let out = write_temp("trace_out.json", "");
    let out_path = out.to_str().expect("utf8 path");
    let (stdout, stderr, ok) =
        xsim(&[&machine, &prog, "--trace", out_path, "--trace-capacity", "2"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("stopped: halted"), "summary on stdout: {stdout}");

    let text = std::fs::read_to_string(out).expect("trace file written");
    let json = Json::parse(&text).expect("trace parses");
    assert_eq!(json.get_str("schema"), Some(gensim::TRACE_SCHEMA));
    assert_eq!(json.get_u64("capacity"), Some(2));
    assert_eq!(json.get_u64("dropped"), Some(2), "4 events through a 2-deep ring");
    let events = json.get("events").and_then(|e| e.as_arr()).expect("events");
    assert_eq!(events.len(), 2);
    assert_eq!(
        events[1].get("ops").and_then(|o| o.as_arr()).expect("ops")[0].as_str(),
        Some("halt"),
        "the tail of the run survives"
    );
}

#[test]
fn ring_eviction_keeps_the_exact_tail_and_round_trips() {
    // 12 instructions retire (ldi, ten addms, halt) through a 4-deep
    // ring: exactly the last four events survive, the `dropped` counter
    // accounts for every evicted one, and the same run through the
    // streaming sink loses nothing.
    let machine = write_temp("acc16.isdl", isdl::samples::ACC16);
    let machine = machine.to_str().expect("utf8 path");
    let mut src = String::from("ldi 0\n");
    for _ in 0..10 {
        src.push_str("addm ten\n");
    }
    src.push_str("halt\n.data\n.org 20\nten: .word 10\n");
    let prog = write_temp("long.asm", &src);
    let prog = prog.to_str().expect("utf8 path");

    let (stdout, stderr, ok) = xsim(&[machine, prog, "--trace", "-", "--trace-capacity", "4"]);
    assert!(ok, "stderr: {stderr}");
    let json = Json::parse(&stdout).expect("trace parses");
    assert_eq!(json.get_str("schema"), Some(gensim::TRACE_SCHEMA));
    assert_eq!(json.get_u64("capacity"), Some(4));
    assert_eq!(json.get_u64("dropped"), Some(8), "12 events through a 4-deep ring");
    let events = json.get("events").and_then(Json::as_arr).expect("events");
    let pcs: Vec<u64> = events.iter().map(|e| e.get_u64("pc").expect("pc")).collect();
    assert_eq!(pcs, vec![8, 9, 10, 11], "exactly the tail of the run survives");
    let cycles: Vec<u64> = events.iter().map(|e| e.get_u64("cycle").expect("cycle")).collect();
    assert_eq!(cycles, vec![8, 9, 10, 11], "event order is preserved across eviction");

    // The rendered report is a fixed point of the RFC 8259 parser.
    let rendered = json.to_pretty();
    let reparsed = Json::parse(&rendered).expect("report round-trips");
    assert_eq!(reparsed.to_pretty(), rendered);

    // The streaming sink is lossless: one JSON line per event, no ring.
    let (stdout, stderr, ok) = xsim(&[machine, prog, "--trace-stream", "-"]);
    assert!(ok, "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 12, "every retired instruction is streamed");
    for (i, line) in lines.iter().enumerate() {
        let ev = Json::parse(line).expect("stream line parses");
        assert_eq!(ev.get_u64("cycle"), Some(i as u64));
    }
}

#[test]
fn fuel_budget_terminates_a_looping_program() {
    // A program that never halts must still terminate under a fuel
    // budget, reporting exactly how far it got.
    let machine = write_temp("acc16.isdl", isdl::samples::ACC16);
    let machine = machine.to_str().expect("utf8 path");
    // A single self-jump is the `end: jmp end` halt idiom; two jumps
    // ping-ponging is a genuine infinite loop.
    let prog = write_temp("spin.asm", "spin: jmp spin2\nspin2: jmp spin\n");
    let prog = prog.to_str().expect("utf8 path");

    let (stdout, stderr, ok) = xsim(&[machine, prog, "--fuel", "25", "--stats", "-"]);
    assert!(ok, "stderr: {stderr}");
    let json = Json::parse(&stdout).expect("stats parse");
    assert_eq!(json.get_str("stop"), Some("instruction fuel exhausted"));
    assert_eq!(json.get_u64("instructions"), Some(25), "exactly the budgeted instructions ran");

    // `--max-cycles` is an alias for `--cycles` and bounds time charged
    // rather than work done.
    let (stdout, stderr, ok) = xsim(&[machine, prog, "--max-cycles", "10", "--stats", "-"]);
    assert!(ok, "stderr: {stderr}");
    let json = Json::parse(&stdout).expect("stats parse");
    assert_eq!(json.get_str("stop"), Some("cycle limit reached"));
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, stderr, ok) = xsim(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
    let (machine, prog) = fixture_paths();
    let (_, stderr, ok) = xsim(&[&machine, &prog, "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"), "{stderr}");
    let (_, stderr, ok) = xsim(&[&machine, &prog, "--core", "quantum"]);
    assert!(!ok);
    assert!(stderr.contains("unknown core"), "{stderr}");
}

#[test]
fn core_choice_does_not_change_the_stats() {
    let (machine, prog) = fixture_paths();
    let run = |extra: &[&str]| {
        let mut args = vec![machine.as_str(), prog.as_str(), "--stats", "-"];
        args.extend_from_slice(extra);
        let (stdout, stderr, ok) = xsim(&args);
        assert!(ok, "stderr: {stderr}");
        let mut json = Json::parse(&stdout).expect("parses");
        // Timing differs run to run, and the translate block reports
        // the dispatch mode (which intentionally depends on core and
        // decode strategy); compare the architectural counters.
        json.insert("timing_us", Json::Null);
        json.insert("translate", Json::Null);
        json.to_string()
    };
    let bytecode = run(&[]);
    let tree = run(&["--core", "tree"]);
    let no_offline = run(&["--no-offline-decode"]);
    assert_eq!(bytecode, tree, "tree and bytecode cores agree");
    assert_eq!(bytecode, no_offline, "decode strategy cannot change the counters");
}
