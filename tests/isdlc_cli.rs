//! Smoke tests for the `isdlc` command-line driver, run against the
//! built binary.

use std::io::Write as _;
use std::process::Command;

fn isdlc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_isdlc")).args(args).output().expect("isdlc runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("isdlc-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

#[test]
fn check_summarizes_spam() {
    let (stdout, _, ok) = isdlc(&["check", "fixtures/spam.isdl"]);
    assert!(ok);
    assert!(stdout.contains("machine `spam`: word 128 bits"));
    assert!(stdout.contains("field MOV2"));
    assert!(stdout.contains("10 constraints"));
}

#[test]
fn print_round_trips_through_check() {
    let (printed, _, ok) = isdlc(&["print", "fixtures/spam2.isdl"]);
    assert!(ok);
    let path = write_temp("printed_spam2.isdl", &printed);
    let (stdout, _, ok) = isdlc(&["check", path.to_str().expect("utf8 path")]);
    assert!(ok, "printed description loads");
    assert!(stdout.contains("machine `spam2`"));
}

#[test]
fn asm_run_and_disasm() {
    let asm =
        write_temp("sum.asm", "start: ldi 2\n addm ten\n sta 0\n halt\n.data\nten: .word 40\n");
    let machine = write_temp("acc16.isdl", isdl::samples::ACC16);
    let m = machine.to_str().expect("utf8 path");
    let a = asm.to_str().expect("utf8 path");

    let (stdout, _, ok) = isdlc(&["asm", m, a]);
    assert!(ok);
    assert!(stdout.lines().count() >= 4, "hex dump:\n{stdout}");

    let (stdout, _, ok) = isdlc(&["disasm", m, a]);
    assert!(ok);
    assert!(stdout.contains("ldi 2"), "{stdout}");
    assert!(stdout.contains("halt"), "{stdout}");

    let (stdout, _, ok) = isdlc(&["run", m, a]);
    assert!(ok);
    assert!(stdout.contains("stopped: halted"), "{stdout}");
    assert!(stdout.contains("ACC = 16'h002a"), "{stdout}");
    assert!(stdout.contains("DM: [0]=002a"), "{stdout}");
}

#[test]
fn batch_script_executes() {
    let asm = write_temp("b.asm", "ldi 5\nhalt\n");
    let script = write_temp("b.script", "step 1\nx ACC\nrun\n");
    let machine = write_temp("acc16b.isdl", isdl::samples::ACC16);
    let (stdout, _, ok) = isdlc(&[
        "batch",
        machine.to_str().expect("utf8"),
        asm.to_str().expect("utf8"),
        script.to_str().expect("utf8"),
    ]);
    assert!(ok);
    assert!(stdout.contains("pc = 0x1"), "{stdout}");
    assert!(stdout.contains("stopped: halted"), "{stdout}");
}

#[test]
fn verilog_and_report() {
    let (stdout, _, ok) = isdlc(&["verilog", "fixtures/spam2.isdl"]);
    assert!(ok);
    assert!(stdout.contains("module spam2"));
    assert!(stdout.contains("endmodule"));

    let (stdout, _, ok) = isdlc(&["report", "fixtures/spam2.isdl"]);
    assert!(ok);
    assert!(stdout.contains("cycle length"));
    assert!(stdout.contains("grid cells"));
    assert!(stdout.contains("saved by sharing"));

    let (no_share, _, ok) = isdlc(&["report", "fixtures/spam2.isdl", "--no-share"]);
    assert!(ok);
    assert!(no_share.contains("(0 saved by sharing)"), "{no_share}");
}

#[test]
fn errors_are_reported() {
    let (_, stderr, ok) = isdlc(&["check", "fixtures/does_not_exist.isdl"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));

    let bad = write_temp("bad.isdl", "machine \"x\" {");
    let (_, stderr, ok) = isdlc(&["check", bad.to_str().expect("utf8")]);
    assert!(!ok);
    assert!(stderr.contains("syntax error") || stderr.contains("error"), "{stderr}");

    let (_, stderr, ok) = isdlc(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn wave_emits_vcd() {
    let asm = write_temp("w.asm", "ldi 3\nshl1\nend: jmp end\n");
    let machine = write_temp("acc16w.isdl", isdl::samples::ACC16);
    let (stdout, _, ok) =
        isdlc(&["wave", machine.to_str().expect("utf8"), asm.to_str().expect("utf8"), "8"]);
    assert!(ok);
    assert!(stdout.contains("$timescale 1ns $end"), "{stdout}");
    assert!(stdout.contains("$var wire 16"), "{stdout}");
    assert!(stdout.contains("ACC $end"), "{stdout}");
    assert!(stdout.contains("#1"), "value changes recorded: {stdout}");
}

#[test]
fn hex_and_tb_produce_usable_artifacts() {
    let asm = write_temp("h.asm", "ldi 9\nhalt\n");
    let machine = write_temp("acc16h.isdl", isdl::samples::ACC16);
    let m = machine.to_str().expect("utf8");

    let (hex, _, ok) = isdlc(&["hex", m, asm.to_str().expect("utf8")]);
    assert!(ok);
    let words = xasm::Program::words_from_hex(&hex, 16).expect("hex parses back");
    assert_eq!(words.len(), 2);

    let (tb, _, ok) = isdlc(&["tb", m, "256"]);
    assert!(ok);
    assert!(tb.contains("module acc16_tb;"), "{tb}");
    assert!(tb.contains("repeat (256)"), "{tb}");
}
