//! Differential tests for the RTL middle-end ([`isdl::opt`]).
//!
//! The optimizer's contract is semantic invisibility: at every
//! `OptLevel`, on both simulator cores, and in the generated hardware,
//! programs must produce bit-identical architectural state. These
//! tests pin that contract across every sample machine, and pin the
//! acceptance-level wins — WIDEMUL's 128-bit multiply narrowing onto
//! the u64 bytecode lane, and nonzero eliminations in `xsim-stats/1`.

use bitv::BitVector;
use gensim::{CoreKind, StopReason, Xsim, XsimOptions};
use hgen::HgenOptions;
use isdl::opt::OptLevel;
use isdl::Machine;
use xasm::{Assembler, Program};

const LEVELS: [OptLevel; 4] =
    [OptLevel::None, OptLevel::Basic, OptLevel::Aggressive, OptLevel::Full];

/// Exercises every operation class of the WIDEMUL sample, including
/// the wide multiply twice (so truncation wrap-around matters) and a
/// store so memory state is covered. A trailing `nop` sled (memory
/// reads as zero) keeps extra hardware clocks state-neutral.
const WIDEMUL_PROG: &str = "\
    lia 255
    lib 255
    wmul
    wmul
    sqs
    redund
    sta 3
    halt
";

/// Exercises the wide divide/remainder ops that stay on the wide
/// fallback lane until level 3's strength reduction, plus the repeated
/// indexed load that load forwarding collapses. Level 3's acceptance
/// gate: bit-identical to level 0 with zero wide fallbacks.
const WIDEMUL_DIV_PROG: &str = "\
    lia 240
    lib 77
    wdiv
    wrem
    sta 5
    dsum 5
    wdiv
    sta 6
    halt
";

const ACC16_SUM: &str = "\
start: ldi 10
       sta 1
loop:  lda 0
       addm 1
       sta 0
       lda 1
       subm one
       sta 1
       jnz loop
       lda 0
end:   jmp end
.data
.org 60
one:   .word 1
";

const TOY_MIXED: &str = "\
start: li R1, 5
       li R2, 7
       li R3, 30
       add R4, R1, reg(R2) | mv R5, R1
       st 30, R4
       sub R6, R4, ind(R3)
       xor R7, R6, reg(R4)
       clracc
       mac R1, R2
       mac R6, R7
       nop
       mvacc R0
end:   jmp end
";

/// Every sample machine paired with a program that halts (or
/// self-loops) under XSIM. The SPAM programs come from the paper's
/// compiled workloads, so the corpus includes compiler-shaped code.
fn corpus() -> Vec<(&'static str, Machine, String)> {
    let spam = isdl::load(isdl::samples::SPAM).expect("spam loads");
    let spam_asm = archex::compile(&spam, &archex::workloads::fir(3, 8)).expect("compiles").asm;
    let spam2 = isdl::load(isdl::samples::SPAM2).expect("spam2 loads");
    let spam2_asm =
        archex::compile(&spam2, &archex::workloads::vector_update(4)).expect("compiles").asm;
    vec![
        ("toy", isdl::load(isdl::samples::TOY).expect("loads"), TOY_MIXED.to_owned()),
        ("acc16", isdl::load(isdl::samples::ACC16).expect("loads"), ACC16_SUM.to_owned()),
        ("widemul", isdl::load(isdl::samples::WIDEMUL).expect("loads"), WIDEMUL_PROG.to_owned()),
        (
            "widemul-div",
            isdl::load(isdl::samples::WIDEMUL).expect("loads"),
            WIDEMUL_DIV_PROG.to_owned(),
        ),
        ("spam", spam, spam_asm),
        ("spam2", spam2, spam2_asm),
    ]
}

/// Reads every cell of every storage (program counter included) so a
/// divergence anywhere in architectural state fails the comparison.
fn full_state(machine: &Machine, sim: &Xsim<'_>) -> Vec<BitVector> {
    let mut out = Vec::new();
    for (i, s) in machine.storages.iter().enumerate() {
        for a in 0..s.cells() {
            out.push(sim.state().read(isdl::rtl::StorageId(i), a).clone());
        }
    }
    out
}

fn run_at(
    machine: &Machine,
    program: &Program,
    opt: OptLevel,
    core: CoreKind,
) -> (StopReason, u64, Vec<BitVector>) {
    let options = XsimOptions { core, opt, ..XsimOptions::default() };
    let mut sim = Xsim::generate_with(machine, options).expect("generates");
    sim.load_program(program);
    let stop = sim.run(1_000_000);
    (stop, sim.stats().cycles, full_state(machine, &sim))
}

#[test]
fn every_sample_machine_is_bit_identical_across_opt_levels_and_cores() {
    for (name, machine, asm) in corpus() {
        let program = Assembler::new(&machine).assemble(&asm).expect("assembles");
        let baseline = run_at(&machine, &program, OptLevel::None, CoreKind::Bytecode);
        assert_eq!(baseline.0, StopReason::Halted, "{name}: corpus program must halt");
        for opt in LEVELS {
            for core in [CoreKind::Bytecode, CoreKind::Tree] {
                let got = run_at(&machine, &program, opt, core);
                assert_eq!(got, baseline, "{name} diverges at opt={opt} core={core:?}");
            }
        }
    }
}

#[test]
fn widemul_narrowing_moves_wide_ops_onto_the_u64_lane() {
    let machine = isdl::load(isdl::samples::WIDEMUL).expect("loads");
    let program = Assembler::new(&machine).assemble(WIDEMUL_PROG).expect("assembles");
    let run = |opt: OptLevel| {
        let mut sim = Xsim::generate_with(&machine, XsimOptions { opt, ..XsimOptions::default() })
            .expect("generates");
        sim.load_program(&program);
        assert_eq!(sim.run(1_000), StopReason::Halted);
        sim
    };
    let raw = run(OptLevel::None);
    let opt = run(OptLevel::default());
    assert!(raw.wide_fallbacks() > 0, "unoptimized wmul exceeds the u64 bytecode lanes");
    assert_eq!(opt.wide_fallbacks(), 0, "narrowing must reclaim every wide plan");
    assert!(opt.opt_stats().narrowed > 0, "stats must record the narrowing");
    assert_eq!(full_state(&machine, &raw), full_state(&machine, &opt));
    // trunc(zext(A,128) * zext(B,128), 16) twice from 255×255, then
    // sqs and redund — fixed by the ISA, independent of opt level.
    let a = machine.storage_by_name("A").expect("A").0;
    assert_eq!(opt.state().read_u64(a, 0), 0xf004);
}

/// Level 3's acceptance gate: the wide divides that defeat narrowing
/// at level 2 are strength-reduced into shifts/masks at level 3 and
/// retire onto the u64 bytecode lane, bit-identically.
#[test]
fn widemul_level3_retires_the_wide_divides_at_runtime() {
    let machine = isdl::load(isdl::samples::WIDEMUL).expect("loads");
    let program = Assembler::new(&machine).assemble(WIDEMUL_DIV_PROG).expect("assembles");
    let run = |opt: OptLevel| {
        let mut sim = Xsim::generate_with(&machine, XsimOptions { opt, ..XsimOptions::default() })
            .expect("generates");
        sim.load_program(&program);
        assert_eq!(sim.run(1_000), StopReason::Halted);
        sim
    };
    let aggressive = run(OptLevel::Aggressive);
    let full = run(OptLevel::Full);
    assert!(
        aggressive.wide_fallbacks() > 0,
        "wide divides must defeat narrowing at level 2 (the ablation baseline)"
    );
    assert_eq!(full.wide_fallbacks(), 0, "strength reduction must reclaim every wide divide");
    assert!(full.opt_stats().strength_reduced >= 2, "both divides strength-reduce");
    assert!(full.opt_stats().loads_forwarded > 0, "dsum's repeated load forwards");
    assert_eq!(full_state(&machine, &aggressive), full_state(&machine, &full));
}

/// The per-pass stats in `xsim-stats/1` must exactly partition the
/// pipeline totals: signed per-pass node deltas telescope to
/// `nodes_before - nodes_after`, and the printed schedule matches the
/// passes array.
#[test]
fn stats_json_per_pass_rows_partition_the_totals() {
    let machine = isdl::load(isdl::samples::WIDEMUL).expect("loads");
    let program = Assembler::new(&machine).assemble(WIDEMUL_PROG).expect("assembles");
    for opt in LEVELS {
        let mut sim = Xsim::generate_with(&machine, XsimOptions { opt, ..XsimOptions::default() })
            .expect("generates");
        sim.load_program(&program);
        sim.run(1_000);
        let j = gensim::stats_json(&sim);
        let o = j.get("opt").expect("opt block");
        let schedule = o.get_str("schedule").expect("schedule");
        let passes = o.get("passes").and_then(obs::Json::as_arr).expect("passes array");
        let names: Vec<&str> =
            passes.iter().map(|p| p.get_str("name").expect("pass name")).collect();
        if names.is_empty() {
            assert_eq!(schedule, "(none)", "level {opt}: empty schedule prints (none)");
        } else {
            assert_eq!(schedule, names.join(","), "level {opt}: schedule matches pass order");
        }
        let delta: i64 = passes
            .iter()
            .map(|p| {
                let nodes_in = p.get_u64("nodes_in").expect("nodes_in") as i64;
                let nodes_out = p.get_u64("nodes_out").expect("nodes_out") as i64;
                nodes_in - nodes_out
            })
            .sum();
        let before = o.get_u64("nodes_before").expect("nodes_before") as i64;
        let after = o.get_u64("nodes_after").expect("nodes_after") as i64;
        assert_eq!(delta, before - after, "level {opt}: per-pass deltas partition the total");
    }
}

#[test]
fn stats_json_reports_the_opt_block() {
    let machine = isdl::load(isdl::samples::WIDEMUL).expect("loads");
    let program = Assembler::new(&machine).assemble(WIDEMUL_PROG).expect("assembles");
    let run = |opt: OptLevel| {
        let mut sim = Xsim::generate_with(&machine, XsimOptions { opt, ..XsimOptions::default() })
            .expect("generates");
        sim.load_program(&program);
        sim.run(1_000);
        gensim::stats_json(&sim)
    };

    let j = run(OptLevel::default());
    assert_eq!(j.get_str("schema"), Some("xsim-stats/1"), "opt block rides the existing schema");
    let o = j.get("opt").expect("stats carry an opt block");
    assert_eq!(o.get_str("level"), Some("2"));
    let before = o.get_u64("nodes_before").expect("nodes_before");
    let after = o.get_u64("nodes_after").expect("nodes_after");
    let eliminated = o.get_u64("nodes_eliminated").expect("nodes_eliminated");
    assert_eq!(eliminated, before - after);
    assert!(eliminated > 0, "a sample machine must report nonzero eliminations");
    assert!(o.get_u64("cse_hits").expect("cse_hits") > 0);
    assert!(o.get_u64("narrowed").expect("narrowed") > 0);
    assert_eq!(o.get_u64("wide_fallbacks"), Some(0));

    // Level 0 is a true baseline: the block is present, all zeros.
    let j0 = run(OptLevel::None);
    let o0 = j0.get("opt").expect("opt block present at level 0");
    assert_eq!(o0.get_str("level"), Some("0"));
    for key in ["nodes_before", "nodes_after", "nodes_eliminated", "folded", "cse_hits", "narrowed"]
    {
        assert_eq!(o0.get_u64(key), Some(0), "level 0 must not touch `{key}`");
    }
    assert!(j0.get("opt").expect("opt").get_u64("wide_fallbacks").expect("wide") > 0);
}

/// HGEN netlists at every opt level must agree with the (independently
/// checked) instruction-level simulator — and therefore with each
/// other. Mirrors `tests/hw_equivalence.rs`.
fn check_hardware(machine: &Machine, asm: &str, options: HgenOptions) {
    let program = Assembler::new(machine).assemble(asm).expect("assembles");
    let mut xsim = Xsim::generate(machine).expect("generates");
    xsim.load_program(&program);
    assert_eq!(xsim.run(1_000_000), StopReason::Halted);

    let result = hgen::synthesize(machine, options).expect("synthesizes");
    let mut hw = vlog::sim::NetlistSim::elaborate(&result.module).expect("elaborates");
    let imem = machine.storage(machine.imem.expect("imem")).name.clone();
    let w = machine.word_width;
    for (a, word) in program.words.iter().enumerate() {
        hw.poke_memory(&imem, a as u64, word.trunc(w).zext(w)).expect("pokes");
    }
    if let Some(dm) =
        machine.storages.iter().find(|s| s.kind == isdl::model::StorageKind::DataMemory)
    {
        for &(addr, v) in &program.data {
            hw.poke_memory(&dm.name, addr, BitVector::from_i64(v, dm.width)).expect("pokes");
        }
    }
    hw.clock(4 * xsim.stats().cycles + 16).expect("clocks");

    for (i, s) in machine.storages.iter().enumerate() {
        use isdl::model::StorageKind::{InstructionMemory, ProgramCounter};
        if matches!(s.kind, ProgramCounter | InstructionMemory) {
            continue;
        }
        for a in 0..s.cells() {
            let soft = xsim.state().read(isdl::rtl::StorageId(i), a);
            let hard = if s.kind.is_addressed() {
                hw.peek_memory(&s.name, a).expect("mem")
            } else {
                hw.peek(&s.name).expect("net")
            };
            assert_eq!(soft, hard, "{}[{a}] differs at opt={}", s.name, options.opt);
        }
    }
}

#[test]
fn hgen_netlists_agree_across_opt_levels() {
    for (name, src, asm) in [
        ("acc16", isdl::samples::ACC16, ACC16_SUM),
        ("widemul", isdl::samples::WIDEMUL, WIDEMUL_PROG),
        ("toy", isdl::samples::TOY, TOY_MIXED),
        ("widemul-div", isdl::samples::WIDEMUL, WIDEMUL_DIV_PROG),
    ] {
        let machine = isdl::load(src).expect("loads");
        for opt in LEVELS {
            eprintln!("hgen differential: {name} at opt={opt}");
            check_hardware(&machine, asm, HgenOptions { opt, ..HgenOptions::default() });
        }
    }
}
