//! Process-level crash torture for the supervised exploration runtime:
//! real `isdlc explore --journal` children are SIGKILLed at seeded
//! byte offsets of journal growth, resumed, and the final trace is
//! required to be semantically identical to an uninterrupted run's.
//! The always-on smoke gate exercises a handful of kill points; the
//! full seeded sweep (both thread counts, kill chains, SIGINT
//! graceful-shutdown) runs under `--features slow-props`.

use obs::Json;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const STEPS: usize = 6;

fn isdlc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_isdlc"))
}

/// A per-test scratch directory with the toy machine written out.
fn scratch(name: &str) -> (PathBuf, String) {
    let dir = std::env::temp_dir().join("crash-torture").join(name);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let machine = dir.join("toy.isdl");
    std::fs::write(&machine, isdl::samples::TOY).expect("write machine");
    (dir.clone(), machine.to_str().expect("utf8 path").to_owned())
}

fn explore_args(machine: &str, threads: usize, journal: &Path, trace: &Path) -> Vec<String> {
    vec![
        "explore".to_owned(),
        machine.to_owned(),
        format!("--steps={STEPS}"),
        format!("--threads={threads}"),
        format!("--journal={}", journal.display()),
        format!("--trace-out={}", trace.display()),
    ]
}

/// The semantic identity of a trace report: counters and accepted
/// steps, excluding wall-clock observability. Two runs with this form
/// equal found the same result by the same path.
fn canonical(trace_path: &Path) -> String {
    let text = std::fs::read_to_string(trace_path).expect("trace report exists");
    let j = Json::parse(&text).expect("trace report parses");
    let steps: Vec<String> = j
        .get("steps")
        .and_then(Json::as_arr)
        .expect("steps array")
        .iter()
        .map(|s| {
            // Every metric except `synthesis_time_s`, which measures
            // host wall time and is legitimately non-deterministic.
            let m = s.get("metrics").expect("metrics");
            let deterministic: Vec<String> = [
                "cycles",
                "instructions",
                "stall_cycles",
                "cycle_ns",
                "runtime_us",
                "area_cells",
                "power_mw",
                "lines_of_verilog",
            ]
            .iter()
            .map(|k| format!("{k}={}", m.get(k).expect("metric present")))
            .collect();
            format!(
                "{} @ {:.9} ({})",
                s.get_str("action").expect("action"),
                s.get_f64("score").expect("score"),
                deterministic.join(" "),
            )
        })
        .collect();
    format!(
        "evaluated={} cache_hits={} skipped={} attempts={} retried={}\n{}",
        j.get_u64("evaluated").expect("evaluated"),
        j.get_u64("cache_hits").expect("cache_hits"),
        j.get_u64("skipped_errors").expect("skipped_errors"),
        j.get_u64("attempts").expect("attempts"),
        j.get_u64("retried").expect("retried"),
        steps.join("\n"),
    )
}

/// Runs an uninterrupted journaled exploration, returning its
/// canonical trace and the journal's byte length.
fn baseline(dir: &Path, machine: &str, threads: usize) -> (String, u64) {
    let journal = dir.join("baseline.jsonl");
    let trace = dir.join("baseline.json");
    let _ = std::fs::remove_file(&journal);
    let out = isdlc()
        .args(explore_args(machine, threads, &journal, &trace))
        .output()
        .expect("isdlc runs");
    assert!(out.status.success(), "baseline run failed: {}", String::from_utf8_lossy(&out.stderr));
    let len = std::fs::metadata(&journal).expect("journal written").len();
    (canonical(&trace), len)
}

/// Spawns a journaled exploration and SIGKILLs it once the journal
/// file reaches `kill_at` bytes. Returns true when the kill landed
/// (false: the child finished first — the journal is complete).
fn run_and_kill(machine: &str, threads: usize, journal: &Path, trace: &Path, kill_at: u64) -> bool {
    let mut child = isdlc()
        .args(explore_args(machine, threads, journal, trace))
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("isdlc spawns");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let grown = std::fs::metadata(journal).map(|m| m.len() >= kill_at).unwrap_or(false);
        if grown {
            child.kill().expect("SIGKILL delivered");
            child.wait().expect("child reaped");
            return true;
        }
        if let Some(status) = child.try_wait().expect("child polled") {
            assert!(status.success(), "child failed before the kill point");
            return false;
        }
        assert!(Instant::now() < deadline, "child never reached {kill_at} journal bytes");
        std::thread::sleep(Duration::from_micros(300));
    }
}

/// Resumes the journal to completion and asserts the final trace is
/// semantically identical to `expected`.
fn resume_and_check(machine: &str, threads: usize, journal: &Path, expected: &str, label: &str) {
    let trace = journal.with_extension("resumed.json");
    let out =
        isdlc().args(explore_args(machine, threads, journal, &trace)).output().expect("isdlc runs");
    assert!(
        out.status.success(),
        "{label}: resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let resumed = canonical(&trace);
    assert_eq!(resumed, expected, "{label}: resumed trace diverged from the uninterrupted run");
}

/// One torture point: kill at a byte offset, then resume.
fn torture_point(dir: &Path, machine: &str, threads: usize, kill_at: u64, expected: &str) {
    let label = format!("threads={threads} kill_at={kill_at}");
    let journal = dir.join(format!("kill_{threads}_{kill_at}.jsonl"));
    let trace = journal.with_extension("json");
    let _ = std::fs::remove_file(&journal);
    run_and_kill(machine, threads, &journal, &trace, kill_at);
    resume_and_check(machine, threads, &journal, expected, &label);
}

/// A deterministic LCG over byte offsets in `[1, len)`.
fn seeded_offsets(seed: u64, len: u64, n: usize) -> Vec<u64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            1 + (state >> 11) % len.max(2)
        })
        .collect()
}

#[test]
fn crash_torture_smoke() {
    let (dir, machine) = scratch("smoke");
    let (expected, len) = baseline(&dir, &machine, 2);
    // Three seeded points across the journal: early (mid-init), middle,
    // and late (inside the final rounds).
    for kill_at in seeded_offsets(0xC0FFEE, len, 3) {
        torture_point(&dir, &machine, 2, kill_at, &expected);
    }
}

/// A contained toolchain panic under `--journal` writes its
/// `flight-dump/1` file next to the journal, the dump names the
/// panicking stage, and — because dumps land via write-then-rename —
/// every dump visible after a SIGKILL is complete and parseable. The
/// journal itself stays resumable.
#[test]
fn flight_dump_names_the_stage_and_survives_sigkill() {
    let (dir, machine) = scratch("flight");
    let journal = dir.join("j.jsonl");
    let trace = dir.join("t.json");
    let flight_dir = dir.join("j.jsonl.flight");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_dir_all(&flight_dir);
    let mut args = explore_args(&machine, 2, &journal, &trace);
    // Panic at the third fresh evaluation inside the simulator stage;
    // one retry succeeds, so the run itself completes.
    args.push("--fault=simulate:2".to_owned());
    args.push("--max-attempts=2".to_owned());

    // Spawn and SIGKILL as soon as the dump file exists — the crash
    // window where a torn dump would be visible if writes weren't
    // atomic.
    let dump_in = |d: &Path| -> Vec<PathBuf> {
        std::fs::read_dir(d)
            .map(|rd| {
                rd.filter_map(|e| {
                    let p = e.expect("entry").path();
                    let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                    (name.starts_with("flight-") && name.ends_with(".json")).then_some(p)
                })
                .collect()
            })
            .unwrap_or_default()
    };
    let mut child = isdlc()
        .args(&args)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("isdlc spawns");
    let deadline = Instant::now() + Duration::from_secs(120);
    let killed = loop {
        if !dump_in(&flight_dir).is_empty() {
            child.kill().expect("SIGKILL delivered");
            child.wait().expect("child reaped");
            break true;
        }
        if let Some(status) = child.try_wait().expect("child polled") {
            assert!(status.success(), "faulted child failed outright");
            break false;
        }
        assert!(Instant::now() < deadline, "no flight dump ever appeared");
        std::thread::sleep(Duration::from_micros(200));
    };

    // Whatever is visible now — post-kill or post-exit — must be a
    // complete, well-formed flight-dump/1 naming the armed stage.
    let dumps = dump_in(&flight_dir);
    assert!(!dumps.is_empty(), "the contained panic left a dump");
    for p in &dumps {
        let doc = Json::parse(&std::fs::read_to_string(p).expect("dump readable"))
            .expect("dump parses after SIGKILL");
        assert_eq!(doc.get_str("schema"), Some("flight-dump/1"), "{}", p.display());
        assert_eq!(doc.get_str("reason"), Some("toolchain_panic"));
        let events = doc.get("events").and_then(Json::as_arr).expect("events");
        let last = events.last().expect("tail event");
        assert_eq!(last.get_str("target"), Some("eval.panic"));
        assert_eq!(last.get_str("msg"), Some("simulate"), "tail names the panicking stage");
    }

    // The journal the kill interrupted resumes to a successful finish.
    if killed {
        let out = isdlc().args(&args).output().expect("isdlc resumes");
        assert!(
            out.status.success(),
            "resume after mid-dump SIGKILL failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let resumed = Json::parse(&std::fs::read_to_string(&trace).expect("trace written"))
            .expect("resumed trace parses");
        assert_eq!(resumed.get_str("schema"), Some("archex-explore/1"));
        assert!(
            resumed.get("steps").and_then(Json::as_arr).is_some_and(|s| !s.is_empty()),
            "resumed run produced a real trace"
        );
    }
}

#[test]
fn corrupted_journal_is_rejected_with_its_line_number() {
    let (dir, machine) = scratch("corrupt");
    let journal = dir.join("j.jsonl");
    let trace = dir.join("t.json");
    let _ = std::fs::remove_file(&journal);
    let out =
        isdlc().args(explore_args(&machine, 2, &journal, &trace)).output().expect("isdlc runs");
    assert!(out.status.success());

    // Flip one byte in the interior of line 2.
    let text = std::fs::read_to_string(&journal).expect("journal exists");
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    assert!(lines.len() >= 3);
    let pos = lines[1].find("\"event\"").expect("event key");
    lines[1].replace_range(pos + 1..pos + 2, "E");
    std::fs::write(&journal, lines.join("\n")).expect("rewrite journal");

    let out =
        isdlc().args(explore_args(&machine, 2, &journal, &trace)).output().expect("isdlc runs");
    assert!(!out.status.success(), "a corrupt journal must never be resumed or replaced");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("journal line 2 is corrupt"),
        "diagnostic names the corrupt line: {stderr}"
    );
    // The corrupt journal was left untouched for forensics.
    assert_eq!(
        std::fs::read_to_string(&journal).expect("journal still there"),
        lines.join("\n"),
        "rejection must not rewrite the journal"
    );
}

/// The full seeded sweep: both supported thread counts, a dozen kill
/// points each, and kill *chains* (the resumed process is itself
/// killed before its own resume).
#[cfg(feature = "slow-props")]
#[test]
fn crash_torture_full_sweep() {
    for threads in [1usize, 4] {
        let (dir, machine) = scratch(&format!("sweep{threads}"));
        let (expected, len) = baseline(&dir, &machine, threads);
        for kill_at in seeded_offsets(0xDEADBEEF ^ threads as u64, len, 12) {
            torture_point(&dir, &machine, threads, kill_at, &expected);
        }
        // Kill chains: the first process dies at one offset, its
        // resumer dies at a later one, and only the third run finishes.
        for (i, pair) in seeded_offsets(0xFEED ^ threads as u64, len / 2, 6).chunks(2).enumerate() {
            let journal = dir.join(format!("chain_{threads}_{i}.jsonl"));
            let trace = journal.with_extension("json");
            let _ = std::fs::remove_file(&journal);
            let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            run_and_kill(&machine, threads, &journal, &trace, a);
            run_and_kill(&machine, threads, &journal, &trace, b.max(a + 1));
            resume_and_check(
                &machine,
                threads,
                &journal,
                &expected,
                &format!("chain threads={threads} kills at {a} then {b}"),
            );
        }
    }
}

/// SIGINT lands as a cooperative shutdown: the child finishes its
/// in-flight round, leaves a clean resumable journal, and exits with
/// the distinct "interrupted" code 75; resuming completes the run.
#[cfg(feature = "slow-props")]
#[test]
fn sigint_shuts_down_gracefully_with_exit_75() {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    let (dir, machine) = scratch("sigint");
    let (expected, _) = baseline(&dir, &machine, 1);
    // The interrupt races run completion; retry until it lands mid-run.
    for attempt in 0..20 {
        let journal = dir.join(format!("sigint_{attempt}.jsonl"));
        let trace = journal.with_extension("json");
        let _ = std::fs::remove_file(&journal);
        let mut child = isdlc()
            .args(explore_args(&machine, 1, &journal, &trace))
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("isdlc spawns");
        // Wait for the journal to appear (the run is mid-flight), then
        // interrupt.
        let deadline = Instant::now() + Duration::from_secs(120);
        while !journal.exists() && child.try_wait().expect("poll").is_none() {
            assert!(Instant::now() < deadline, "journal never appeared");
            std::thread::sleep(Duration::from_micros(200));
        }
        unsafe {
            kill(child.id() as i32, 2); // SIGINT
        }
        let status = child.wait().expect("child reaped");
        match status.code() {
            Some(75) => {
                resume_and_check(&machine, 1, &journal, &expected, "post-SIGINT resume");
                return;
            }
            // The run won the race and completed; try again.
            Some(0) => continue,
            other => panic!("unexpected exit status {other:?} after SIGINT"),
        }
    }
    panic!("SIGINT never landed mid-run in 20 attempts");
}
