//! Property-based differential test between the two generated models:
//! for random straight-line programs, the XSIM instruction-level
//! simulator and the HGEN hardware model must agree on the final
//! architectural state — random-program evidence for "the
//! synthesizable Verilog model is itself a simulator" (§4.2).
//!
//! Programs are straight-line (single trailing self-loop) so the
//! simulator's static hazard analysis and the hardware's dynamic
//! scoreboard see the same instruction order.

use bitv::BitVector;
use gensim::{StopReason, Xsim};
use hgen::{synthesize, HgenOptions};
use proptest::prelude::*;
use std::sync::OnceLock;
use vlog::lsim::LevelizedSim;
use vlog::sim::NetlistSim;
use xasm::Assembler;

fn machine() -> &'static isdl::Machine {
    static M: OnceLock<isdl::Machine> = OnceLock::new();
    M.get_or_init(|| isdl::load(isdl::samples::TOY).expect("loads"))
}

/// The hardware netlist, elaborated once and cloned per case.
fn hardware() -> &'static NetlistSim {
    static H: OnceLock<NetlistSim> = OnceLock::new();
    H.get_or_init(|| {
        let hw = synthesize(machine(), HgenOptions::default()).expect("synthesizes");
        NetlistSim::elaborate(&hw.module).expect("elaborates")
    })
}

/// The same netlist, compiled by the levelized backend.
fn hardware_levelized() -> &'static LevelizedSim {
    static H: OnceLock<LevelizedSim> = OnceLock::new();
    H.get_or_init(|| {
        let hw = synthesize(machine(), HgenOptions::default()).expect("synthesizes");
        LevelizedSim::elaborate(&hw.module).expect("compiles")
    })
}

fn line(op: u8, d: u8, a: u8, b: u8, imm: u8, mode: bool) -> String {
    let (d, a, b) = (d % 8, a % 8, b % 8);
    let src = if mode { format!("ind(R{b})") } else { format!("reg(R{b})") };
    match op % 11 {
        0 => format!("add R{d}, R{a}, {src}"),
        1 => format!("sub R{d}, R{a}, {src}"),
        2 => format!("and R{d}, R{a}, {src}"),
        3 => format!("xor R{d}, R{a}, {src}"),
        4 => format!("li R{d}, {imm}"),
        5 => format!("st {imm}, R{a}"),
        6 => format!("ld R{d}, {imm}"),
        7 => format!("mac R{a}, R{b}"),
        8 => format!("clracc | mv R{d}, R{a}"),
        9 => format!("mvacc R{d} | ALU.nop"),
        _ => format!("add R{d}, R{a}, {src} | mv R{b}, R{a}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_match_hardware(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<bool>()),
            1..20,
        ),
        seed_mem in proptest::collection::vec(any::<u16>(), 8),
    ) {
        let m = machine();
        let mut src = String::new();
        for (op, d, a, b, imm, mode) in &ops {
            src.push_str(&line(*op, *d, *a, *b, *imm, *mode));
            src.push('\n');
        }
        src.push_str("__stop: jmp __stop\n");
        let program = Assembler::new(m).assemble(&src).expect("assembles");

        // ILS run.
        let mut xsim = Xsim::generate(m).expect("generates");
        xsim.load_program(&program);
        let dm = m.storage_by_name("DM").expect("DM").0;
        for (i, &v) in seed_mem.iter().enumerate() {
            xsim.state_mut().poke(dm, i as u64, BitVector::from_u64(u64::from(v), 16));
        }
        prop_assert_eq!(xsim.run(100_000), StopReason::Halted);

        // Hardware run (cloned pre-elaborated netlist).
        let mut hw = hardware().clone();
        for (a, w) in program.words.iter().enumerate() {
            hw.poke_memory("IM", a as u64, w.clone()).expect("pokes");
        }
        for (i, &v) in seed_mem.iter().enumerate() {
            hw.poke_memory("DM", i as u64, BitVector::from_u64(u64::from(v), 16))
                .expect("pokes");
        }
        hw.clock(4 * xsim.stats().cycles + 16).expect("clocks");

        // Every data-carrying storage must agree bit-for-bit.
        let rf = m.storage_by_name("RF").expect("RF").0;
        for r in 0..8u64 {
            prop_assert_eq!(
                xsim.state().read(rf, r),
                hw.peek_memory("RF", r).expect("mem"),
                "RF[{}] differs for:\n{}", r, src
            );
        }
        for a in 0..256u64 {
            prop_assert_eq!(
                xsim.state().read(dm, a),
                hw.peek_memory("DM", a).expect("mem"),
                "DM[{}] differs for:\n{}", a, src
            );
        }
        let acc = m.storage_by_name("ACC").expect("ACC").0;
        prop_assert_eq!(xsim.state().read(acc, 0), hw.peek("ACC").expect("net"), "ACC differs for:\n{}", src);
        let z = m.storage_by_name("Z").expect("Z").0;
        prop_assert_eq!(xsim.state().read(z, 0), hw.peek("Z").expect("net"), "Z differs for:\n{}", src);

        // The levelized backend, fed the same stimulus, must land in
        // exactly the same state as the event-driven one.
        let mut lhw = hardware_levelized().clone();
        for (a, w) in program.words.iter().enumerate() {
            lhw.poke_memory("IM", a as u64, w.clone()).expect("pokes");
        }
        for (i, &v) in seed_mem.iter().enumerate() {
            lhw.poke_memory("DM", i as u64, BitVector::from_u64(u64::from(v), 16))
                .expect("pokes");
        }
        lhw.clock(4 * xsim.stats().cycles + 16).expect("clocks");
        for r in 0..8u64 {
            prop_assert_eq!(
                hw.peek_memory("RF", r).expect("mem"),
                &lhw.peek_memory("RF", r).expect("mem"),
                "levelized RF[{}] differs for:\n{}", r, src
            );
        }
        for a in 0..256u64 {
            prop_assert_eq!(
                hw.peek_memory("DM", a).expect("mem"),
                &lhw.peek_memory("DM", a).expect("mem"),
                "levelized DM[{}] differs for:\n{}", a, src
            );
        }
        prop_assert_eq!(hw.peek("ACC").expect("net"), &lhw.peek("ACC").expect("net"), "levelized ACC differs for:\n{}", src);
        prop_assert_eq!(hw.peek("Z").expect("net"), &lhw.peek("Z").expect("net"), "levelized Z differs for:\n{}", src);
    }
}
