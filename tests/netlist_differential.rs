//! Three-way differential over the netlist simulation tiers: for every
//! sample machine, a halting program, and every middle-end opt level,
//! the ILS (XSIM), the event-driven netlist simulator, and the compiled
//! levelized netlist simulator must agree bit-for-bit on final
//! architectural state. This is the standing gate that keeps the
//! levelized backend honest — it collapses 4-state event-driven
//! evaluation into 2-state straight-line sweeps, and any shortcut that
//! changes semantics fails here, on compiler-shaped code, not just on
//! hand-written counters.

use bitv::BitVector;
use gensim::{StopReason, Xsim};
use hgen::{synthesize, HgenOptions};
use isdl::opt::OptLevel;
use isdl::Machine;
use vlog::{AnySim, SimBackend};
use xasm::{Assembler, Program};

const LEVELS: [OptLevel; 4] =
    [OptLevel::None, OptLevel::Basic, OptLevel::Aggressive, OptLevel::Full];

const WIDEMUL_PROG: &str = "\
    lia 255
    lib 255
    wmul
    wmul
    sqs
    redund
    sta 3
    wdiv
    wrem
    dsum 3
    wdiv
    halt
";

const ACC16_SUM: &str = "\
start: ldi 10
       sta 1
loop:  lda 0
       addm 1
       sta 0
       lda 1
       subm one
       sta 1
       jnz loop
       lda 0
end:   jmp end
.data
.org 60
one:   .word 1
";

const TOY_MIXED: &str = "\
start: li R1, 5
       li R2, 7
       li R3, 30
       add R4, R1, reg(R2) | mv R5, R1
       st 30, R4
       sub R6, R4, ind(R3)
       xor R7, R6, reg(R4)
       clracc
       mac R1, R2
       mac R6, R7
       nop
       mvacc R0
end:   jmp end
";

/// The same 5-machine corpus as `opt_differential.rs` and
/// `translate_differential.rs`: every sample machine paired with a
/// program that halts (or self-loops) under XSIM, including
/// compiler-generated SPAM kernels.
fn corpus() -> Vec<(&'static str, Machine, String)> {
    let spam = isdl::load(isdl::samples::SPAM).expect("spam loads");
    let spam_asm = archex::compile(&spam, &archex::workloads::fir(3, 8)).expect("compiles").asm;
    let spam2 = isdl::load(isdl::samples::SPAM2).expect("spam2 loads");
    let spam2_asm =
        archex::compile(&spam2, &archex::workloads::vector_update(4)).expect("compiles").asm;
    vec![
        ("toy", isdl::load(isdl::samples::TOY).expect("loads"), TOY_MIXED.to_owned()),
        ("acc16", isdl::load(isdl::samples::ACC16).expect("loads"), ACC16_SUM.to_owned()),
        ("widemul", isdl::load(isdl::samples::WIDEMUL).expect("loads"), WIDEMUL_PROG.to_owned()),
        ("spam", spam, spam_asm),
        ("spam2", spam2, spam2_asm),
    ]
}

/// Runs `program` on XSIM until it halts; returns the simulator.
fn run_xsim<'m>(machine: &'m Machine, program: &Program) -> Xsim<'m> {
    let mut sim = Xsim::generate(machine).expect("generates");
    sim.load_program(program);
    assert_eq!(sim.run(1_000_000), StopReason::Halted, "corpus program must halt");
    sim
}

/// Elaborates the HGEN netlist with `backend`, loads the program and
/// data image, and clocks it past quiescence.
fn run_netlist(
    machine: &Machine,
    program: &Program,
    options: HgenOptions,
    backend: SimBackend,
    edges: u64,
) -> AnySim {
    let result = synthesize(machine, options).expect("synthesizes");
    let mut sim = result.simulator(backend).expect("elaborates");
    let imem = machine.storage(machine.imem.expect("imem")).name.clone();
    let w = machine.word_width;
    for (a, word) in program.words.iter().enumerate() {
        sim.poke_memory(&imem, a as u64, word.trunc(w).zext(w)).expect("pokes");
    }
    if let Some(dm) =
        machine.storages.iter().find(|s| s.kind == isdl::model::StorageKind::DataMemory)
    {
        for &(addr, v) in &program.data {
            sim.poke_memory(&dm.name, addr, BitVector::from_i64(v, dm.width)).expect("pokes");
        }
    }
    sim.clock(edges).expect("clocks");
    sim
}

/// Every data-carrying storage of `machine`, read from a netlist
/// simulator, in declaration order.
fn netlist_state(machine: &Machine, sim: &AnySim) -> Vec<(String, u64, BitVector)> {
    let mut out = Vec::new();
    for s in &machine.storages {
        use isdl::model::StorageKind::{InstructionMemory, ProgramCounter};
        if matches!(s.kind, ProgramCounter | InstructionMemory) {
            continue;
        }
        for a in 0..s.cells() {
            let v = if s.kind.is_addressed() {
                sim.peek_memory(&s.name, a).expect("mem")
            } else {
                sim.peek(&s.name).expect("net")
            };
            out.push((s.name.clone(), a, v));
        }
    }
    out
}

/// The tentpole gate: ILS, event netlist, and levelized netlist agree
/// on every storage cell, for every corpus machine, at every HGEN opt
/// level.
#[test]
fn netlist_backends_match_the_ils_across_samples_and_opt_levels() {
    for (name, machine, asm) in corpus() {
        let program = Assembler::new(&machine).assemble(&asm).expect("assembles");
        let xsim = run_xsim(&machine, &program);
        let edges = 4 * xsim.stats().cycles + 16;
        for opt in LEVELS {
            let options = HgenOptions { opt, ..HgenOptions::default() };
            let event = run_netlist(&machine, &program, options, SimBackend::Event, edges);
            let lev = run_netlist(&machine, &program, options, SimBackend::Levelized, edges);
            let ev_state = netlist_state(&machine, &event);
            let lv_state = netlist_state(&machine, &lev);
            assert_eq!(ev_state, lv_state, "{name}: backends diverge at opt={opt}");
            for (i, s) in machine.storages.iter().enumerate() {
                use isdl::model::StorageKind::{InstructionMemory, ProgramCounter};
                if matches!(s.kind, ProgramCounter | InstructionMemory) {
                    continue;
                }
                for a in 0..s.cells() {
                    let soft = xsim.state().read(isdl::rtl::StorageId(i), a);
                    let hard = if s.kind.is_addressed() {
                        lev.peek_memory(&s.name, a).expect("mem")
                    } else {
                        lev.peek(&s.name).expect("net")
                    };
                    assert_eq!(
                        *soft, hard,
                        "{name}: {}[{a}] differs from the ILS at opt={opt}",
                        s.name
                    );
                }
            }
        }
    }
}

/// Beyond final state: both backends driven by the same stimulus must
/// produce byte-identical VCD waveforms — they share one writer, and
/// every intermediate net value matches cycle by cycle.
#[test]
fn vcd_waveforms_are_byte_identical_between_backends() {
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct SharedSink(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("sink lock").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    for (name, machine, asm) in corpus() {
        let program = Assembler::new(&machine).assemble(&asm).expect("assembles");
        let dump = |backend: SimBackend| {
            let result = synthesize(&machine, HgenOptions::default()).expect("synthesizes");
            let mut sim = result.simulator(backend).expect("elaborates");
            let imem = machine.storage(machine.imem.expect("imem")).name.clone();
            let w = machine.word_width;
            for (a, word) in program.words.iter().enumerate() {
                sim.poke_memory(&imem, a as u64, word.trunc(w).zext(w)).expect("pokes");
            }
            let sink = SharedSink::default();
            sim.start_vcd(Box::new(sink.clone())).expect("vcd starts");
            sim.clock(200).expect("clocks");
            sim.stop_vcd();
            let bytes = sink.0.lock().expect("sink lock").clone();
            bytes
        };
        let event = dump(SimBackend::Event);
        let lev = dump(SimBackend::Levelized);
        assert!(!event.is_empty(), "{name}: VCD captured something");
        assert_eq!(event, lev, "{name}: waveforms diverge between backends");
    }
}

/// The quiescence machinery does real work on real machines: once a
/// SPAM kernel has halted in its self-loop, most partitions stop
/// changing and the skip counters show it.
#[test]
fn levelized_stats_show_partition_skipping_on_spam() {
    let machine = isdl::load(isdl::samples::SPAM).expect("loads");
    let asm = archex::compile(&machine, &archex::workloads::fir(3, 8)).expect("compiles").asm;
    let program = Assembler::new(&machine).assemble(&asm).expect("assembles");
    let xsim = run_xsim(&machine, &program);
    let edges = 4 * xsim.stats().cycles + 16;
    let sim = run_netlist(&machine, &program, HgenOptions::default(), SimBackend::Levelized, edges);
    let AnySim::Levelized(ref lsim) = sim else {
        panic!("levelized backend requested");
    };
    let st = lsim.stats();
    assert!(st.levels > 1, "a real datapath has depth: {st:?}");
    assert!(st.partitions > 1, "independent cones partition: {st:?}");
    assert!(st.partitions_skipped > 0, "quiescent partitions are skipped: {st:?}");
    assert!(st.skip_rate() > 0.0 && st.skip_rate() < 1.0, "skip rate is a rate: {st:?}");
    let json = vlog::stats_json(&sim);
    assert_eq!(json.get_str("schema"), Some("vlog-stats/1"));
    let round_trip = obs::Json::parse(&json.to_pretty()).expect("stats parse back");
    assert_eq!(round_trip.get_u64("cycles"), Some(edges));
}
