//! Differential tests for the translated basic-block tier.
//!
//! The translation layer's contract mirrors the middle-end's: semantic
//! invisibility. Dispatching through fused basic blocks must produce
//! bit-identical architectural state, address traces, event traces,
//! and cycle profiles at every opt level, on every sample machine, and
//! across exploration thread counts. These tests pin that contract,
//! the self-modifying-store visibility rule (a staged write into
//! instruction memory applied at end-of-cycle is observed by the next
//! fetch and precisely invalidates covering blocks), and the
//! translation statistics surfaced through `xsim-stats/1`.

use bitv::BitVector;
use gensim::{CoreKind, StopReason, Xsim, XsimOptions};
use isdl::opt::OptLevel;
use isdl::Machine;
use std::sync::{Arc, Mutex};
use xasm::{Assembler, Program};

const LEVELS: [OptLevel; 4] =
    [OptLevel::None, OptLevel::Basic, OptLevel::Aggressive, OptLevel::Full];

const WIDEMUL_PROG: &str = "\
    lia 255
    lib 255
    wmul
    wmul
    sqs
    redund
    sta 3
    wdiv
    wrem
    dsum 3
    wdiv
    halt
";

const ACC16_SUM: &str = "\
start: ldi 10
       sta 1
loop:  lda 0
       addm 1
       sta 0
       lda 1
       subm one
       sta 1
       jnz loop
       lda 0
end:   jmp end
.data
.org 60
one:   .word 1
";

const TOY_MIXED: &str = "\
start: li R1, 5
       li R2, 7
       li R3, 30
       add R4, R1, reg(R2) | mv R5, R1
       st 30, R4
       sub R6, R4, ind(R3)
       xor R7, R6, reg(R4)
       clracc
       mac R1, R2
       mac R6, R7
       nop
       mvacc R0
end:   jmp end
";

/// Every sample machine paired with a program that halts (or
/// self-loops) under XSIM — the same corpus as `opt_differential.rs`,
/// so the translation tier is proven on compiler-shaped SPAM code too.
fn corpus() -> Vec<(&'static str, Machine, String)> {
    let spam = isdl::load(isdl::samples::SPAM).expect("spam loads");
    let spam_asm = archex::compile(&spam, &archex::workloads::fir(3, 8)).expect("compiles").asm;
    let spam2 = isdl::load(isdl::samples::SPAM2).expect("spam2 loads");
    let spam2_asm =
        archex::compile(&spam2, &archex::workloads::vector_update(4)).expect("compiles").asm;
    vec![
        ("toy", isdl::load(isdl::samples::TOY).expect("loads"), TOY_MIXED.to_owned()),
        ("acc16", isdl::load(isdl::samples::ACC16).expect("loads"), ACC16_SUM.to_owned()),
        ("widemul", isdl::load(isdl::samples::WIDEMUL).expect("loads"), WIDEMUL_PROG.to_owned()),
        ("spam", spam, spam_asm),
        ("spam2", spam2, spam2_asm),
    ]
}

/// Reads every cell of every storage (program counter included) so a
/// divergence anywhere in architectural state fails the comparison.
fn full_state(machine: &Machine, sim: &Xsim<'_>) -> Vec<BitVector> {
    let mut out = Vec::new();
    for (i, s) in machine.storages.iter().enumerate() {
        for a in 0..s.cells() {
            out.push(sim.state().read(isdl::rtl::StorageId(i), a).clone());
        }
    }
    out
}

fn run_at(
    machine: &Machine,
    program: &Program,
    opt: OptLevel,
    core: CoreKind,
    translate: bool,
) -> (StopReason, u64, u64, Vec<BitVector>) {
    let options = XsimOptions { core, opt, translate, ..XsimOptions::default() };
    let mut sim = Xsim::generate_with(machine, options).expect("generates");
    sim.load_program(program);
    let stop = sim.run(1_000_000);
    (stop, sim.stats().cycles, sim.stats().stall_cycles, full_state(machine, &sim))
}

#[test]
fn translated_dispatch_is_bit_identical_across_samples_and_opt_levels() {
    for (name, machine, asm) in corpus() {
        let program = Assembler::new(&machine).assemble(&asm).expect("assembles");
        let baseline = run_at(&machine, &program, OptLevel::None, CoreKind::Bytecode, false);
        assert_eq!(baseline.0, StopReason::Halted, "{name}: corpus program must halt");
        for opt in LEVELS {
            for translate in [false, true] {
                let got = run_at(&machine, &program, opt, CoreKind::Bytecode, translate);
                assert_eq!(got, baseline, "{name} diverges at opt={opt} translate={translate}");
            }
            // The tree core ignores the translate flag; it must agree
            // regardless of what the flag says.
            let got = run_at(&machine, &program, opt, CoreKind::Tree, true);
            assert_eq!(got, baseline, "{name} tree core diverges at opt={opt}");
        }
    }
}

#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);
impl std::io::Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("sink lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Beyond final state: the address trace, the full `xsim-trace/1`
/// event trace (cycles, pcs, staged writes), and the `xsim-profile/1`
/// report must be byte-identical between dispatch tiers.
#[test]
fn traces_and_profiles_are_identical_between_tiers() {
    for (name, machine, asm) in corpus() {
        let program = Assembler::new(&machine).assemble(&asm).expect("assembles");
        let observe = |translate: bool| {
            let options = XsimOptions { translate, ..XsimOptions::default() };
            let mut sim = Xsim::generate_with(&machine, options).expect("generates");
            sim.load_program(&program);
            sim.enable_event_trace(16_384);
            sim.enable_profile();
            let sink = SharedSink::default();
            sim.set_trace(Box::new(sink.clone()));
            let stop = sim.run(1_000_000);
            assert_eq!(stop, StopReason::Halted, "{name} halts");
            let addrs = sink.0.lock().expect("sink lock").clone();
            (
                addrs,
                gensim::trace_json(&sim).to_string(),
                gensim::profile_json(&sim).to_string(),
                sim.stats().clone(),
            )
        };
        let (addrs_i, trace_i, profile_i, stats_i) = observe(false);
        let (addrs_t, trace_t, profile_t, stats_t) = observe(true);
        assert_eq!(addrs_i, addrs_t, "{name}: address traces diverge");
        assert_eq!(trace_i, trace_t, "{name}: event traces diverge");
        assert_eq!(profile_i, profile_t, "{name}: profiles diverge");
        assert_eq!(stats_i, stats_t, "{name}: stats diverge");
    }
}

/// Fuel budgets land on the same instruction boundary in both tiers,
/// even when the boundary falls mid-block.
#[test]
fn fuel_boundaries_agree_mid_block() {
    let machine = isdl::load(isdl::samples::ACC16).expect("loads");
    let program = Assembler::new(&machine).assemble(ACC16_SUM).expect("assembles");
    let mut interp =
        Xsim::generate_with(&machine, XsimOptions { translate: false, ..XsimOptions::default() })
            .expect("generates");
    let mut translated = Xsim::generate(&machine).expect("generates");
    interp.load_program(&program);
    translated.load_program(&program);
    loop {
        let a = interp.run_fuel(1_000_000, 7);
        let b = translated.run_fuel(1_000_000, 7);
        assert_eq!(a, b, "stop reasons agree at every fuel boundary");
        assert_eq!(interp.stats(), translated.stats());
        assert_eq!(full_state(&machine, &interp), full_state(&machine, &translated));
        if a == StopReason::Halted {
            break;
        }
    }
}

/// A self-modifying machine: `sti`/`sti3` store the encoding of `inc`
/// (0x2000) into instruction memory, with latency 1 and 3
/// respectively, so a staged code store lands right before the next
/// fetch or in the middle of an already-translated block.
const SMC_MACHINE: &str = r#"
    machine "smc" { format { word 16; } }
    storage { imem IM 16 x 32; pc PC 5; register A 16; dmem DM 16 x 32; }
    tokens { token U8 imm(8, unsigned); token U5 imm(5, unsigned); }
    field F {
        op ldi(v: U8)  { encode { word[15:12] = 0b0001; word[7:0] = v; } action { A <- zext(v, 16); } }
        op inc()       { encode { word[15:12] = 0b0010; } action { A <- A + 16'd1; } }
        op dbl()       { encode { word[15:12] = 0b0011; } action { A <- A + A; } }
        op sti(a: U5)  { encode { word[15:12] = 0b0100; word[4:0] = a; } action { IM[a] <- 16'h2000; } }
        op sti3(a: U5) { encode { word[15:12] = 0b0101; word[4:0] = a; } action { IM[a] <- 16'h2000; } timing { latency 3; usage 1; } }
        op sta(a: U5)  { encode { word[15:12] = 0b0110; word[4:0] = a; } action { DM[a] <- A; } }
        op halt()      { encode { word[15:12] = 0b1111; } }
        op nop()       { encode { word[15:12] = 0b0000; } }
    }
"#;

fn run_smc<'m>(machine: &'m Machine, asm: &str, core: CoreKind, translate: bool) -> Xsim<'m> {
    let program = Assembler::new(machine).assemble(asm).expect("assembles");
    let options = XsimOptions { core, translate, ..XsimOptions::default() };
    let mut sim = Xsim::generate_with(machine, options).expect("generates");
    sim.load_program(&program);
    assert_eq!(sim.run(1_000), StopReason::Halted, "smc program halts");
    sim
}

/// The satellite-3 visibility rule: a store into instruction memory
/// applied at end-of-cycle is observed by the *next* fetch. `sti 2`
/// rewrites the following instruction (`dbl`, which would double A to
/// 20) into `inc` — every tier must execute the new code and read 11.
#[test]
fn code_store_is_visible_to_the_next_fetch() {
    let machine = isdl::load(SMC_MACHINE).expect("loads");
    let asm = "ldi 10\nsti 2\ndbl\nsta 0\nhalt\n";
    let dm = machine.storage_by_name("DM").expect("DM").0;
    for (core, translate) in
        [(CoreKind::Tree, false), (CoreKind::Bytecode, false), (CoreKind::Bytecode, true)]
    {
        let sim = run_smc(&machine, asm, core, translate);
        assert_eq!(
            sim.state().read_u64(dm, 0),
            11,
            "core {core:?} translate={translate}: next fetch must see the rewritten instruction"
        );
    }
}

/// A latency-3 code store lands while the translated block containing
/// its target is executing: the block must be invalidated mid-flight
/// and the rewritten tail re-translated.
#[test]
fn latent_code_store_invalidates_a_block_mid_flight() {
    let machine = isdl::load(SMC_MACHINE).expect("loads");
    // `sti3 5` (visible at cycle 4) rewrites the `dbl` at address 5,
    // which sits mid-block behind the nop sled.
    let asm = "ldi 10\nsti3 5\nnop\nnop\nnop\ndbl\nsta 0\nhalt\n";
    let dm = machine.storage_by_name("DM").expect("DM").0;
    let mut dumps = Vec::new();
    for (core, translate) in
        [(CoreKind::Tree, false), (CoreKind::Bytecode, false), (CoreKind::Bytecode, true)]
    {
        let sim = run_smc(&machine, asm, core, translate);
        assert_eq!(sim.state().read_u64(dm, 0), 11, "core {core:?} translate={translate}");
        dumps.push((sim.stats().clone(), full_state(&machine, &sim)));
        if translate {
            let t = sim.translate_stats();
            assert!(t.enabled, "translation engages on the smc machine");
            assert!(t.invalidations >= 1, "the covering block was dropped: {t:?}");
            assert!(t.blocks >= 3, "head block, stale block, re-translated tail: {t:?}");
        }
    }
    assert!(dumps.windows(2).all(|w| w[0] == w[1]), "all tiers agree on state and stats");
}

/// Translation statistics: blocks and fused retires on a real SPAM
/// workload, the fused-μop optimizer doing work on acc16, and a clean
/// zero report when the tier is disabled.
#[test]
fn translation_stats_report_the_dispatch_mix() {
    let spam = isdl::load(isdl::samples::SPAM).expect("loads");
    let asm = archex::compile(&spam, &archex::workloads::fir(3, 8)).expect("compiles").asm;
    let program = Assembler::new(&spam).assemble(&asm).expect("assembles");

    let mut sim = Xsim::generate(&spam).expect("generates");
    sim.load_program(&program);
    assert_eq!(sim.run(1_000_000), StopReason::Halted);
    let t = sim.translate_stats();
    assert!(t.enabled, "translation is on by default");
    assert!(t.blocks > 0, "the FIR kernel translated into blocks: {t:?}");
    assert!(t.block_instructions > 0, "instructions retired through fused dispatch: {t:?}");
    assert_eq!(
        t.block_instructions + t.interp_instructions,
        sim.stats().instructions,
        "dispatch mix partitions the retire count: {t:?}"
    );

    // The stats report carries the same numbers.
    let json = gensim::stats_json(&sim);
    let tj = json.get("translate").expect("stats carry a translate block");
    assert_eq!(tj.get_u64("blocks"), Some(t.blocks));
    assert_eq!(tj.get_u64("invalidations"), Some(t.invalidations));
    assert_eq!(tj.get_u64("block_instructions"), Some(t.block_instructions));
    assert_eq!(tj.get_u64("interp_instructions"), Some(t.interp_instructions));
    assert_eq!(tj.get_u64("fused_ops_removed"), Some(t.fused_ops_removed));

    // Fusion's constant folding + DCE removes μ-ops on acc16 (ldi's
    // zext of an immediate folds at translation time).
    let acc16 = isdl::load(isdl::samples::ACC16).expect("loads");
    let p = Assembler::new(&acc16).assemble("ldi 7\nsta 0\nhalt\n").expect("assembles");
    let mut sim = Xsim::generate(&acc16).expect("generates");
    sim.load_program(&p);
    assert_eq!(sim.run(100), StopReason::Halted);
    assert!(sim.translate_stats().fused_ops_removed > 0, "{:?}", sim.translate_stats());

    // Disabled tier: zero blocks, everything interpreted.
    let opts = XsimOptions { translate: false, ..XsimOptions::default() };
    let mut sim = Xsim::generate_with(&spam, opts).expect("generates");
    sim.load_program(&program);
    assert_eq!(sim.run(1_000_000), StopReason::Halted);
    let t = sim.translate_stats();
    assert!(!t.enabled);
    assert_eq!(t.blocks, 0);
    assert_eq!(t.block_instructions, 0);
    assert_eq!(t.interp_instructions, sim.stats().instructions);
}

/// Exploration evaluates candidates with translation on (the default
/// simulator); the result must not depend on the evaluation thread
/// count.
#[test]
fn exploration_results_are_thread_count_invariant_with_translation() {
    let start = isdl::load(isdl::samples::TOY).expect("loads");
    let serial = bench::run_exploration(&start, archex::Strategy::Greedy, 1);
    let parallel = bench::run_exploration(&start, archex::Strategy::Greedy, 4);
    assert!(serial.semantic_eq(&parallel), "thread count cannot change the explored result");
}
