//! Property-based differential test for the RTL middle-end
//! ([`isdl::opt`]): for random programs, every `(OptLevel, CoreKind)`
//! configuration must produce the same architectural state as the
//! unoptimized bytecode baseline. Random-program evidence for the
//! middle-end's semantic-invisibility contract, complementing the
//! fixed corpus in `tests/opt_differential.rs`.
//!
//! Two machines are covered: TOY (VLIW, hazards, addressing-mode
//! non-terminals) and WIDEMUL (wide arithmetic that exercises the
//! narrowing pass on every `wmul`, strength reduction on every
//! `wdiv`/`wrem`, and load forwarding on every `dsum`).
//!
//! Beyond the full-pipeline sweep, every pass is also run in
//! *isolation* (a single-pass `--opt-passes` schedule) against the
//! same baseline, and the level-3 pipeline is checked for
//! run-to-run determinism.

use bitv::BitVector;
use gensim::{CoreKind, StopReason, Xsim, XsimOptions};
use isdl::opt::{OptLevel, PassKind, PassList, Pipeline};
use proptest::prelude::*;
use std::sync::OnceLock;
use xasm::Assembler;

fn toy() -> &'static isdl::Machine {
    static M: OnceLock<isdl::Machine> = OnceLock::new();
    M.get_or_init(|| isdl::load(isdl::samples::TOY).expect("loads"))
}

fn widemul() -> &'static isdl::Machine {
    static M: OnceLock<isdl::Machine> = OnceLock::new();
    M.get_or_init(|| isdl::load(isdl::samples::WIDEMUL).expect("loads"))
}

fn toy_line(op: u8, d: u8, a: u8, b: u8, imm: u8, mode: bool) -> String {
    let (d, a, b) = (d % 8, a % 8, b % 8);
    let src = if mode { format!("ind(R{b})") } else { format!("reg(R{b})") };
    match op % 11 {
        0 => format!("add R{d}, R{a}, {src}"),
        1 => format!("sub R{d}, R{a}, {src}"),
        2 => format!("and R{d}, R{a}, {src}"),
        3 => format!("xor R{d}, R{a}, {src}"),
        4 => format!("li R{d}, {imm}"),
        5 => format!("st {imm}, R{a}"),
        6 => format!("ld R{d}, {imm}"),
        7 => format!("mac R{a}, R{b}"),
        8 => format!("clracc | mv R{d}, R{a}"),
        9 => format!("mvacc R{d} | ALU.nop"),
        _ => format!("add R{d}, R{a}, {src} | mv R{b}, R{a}"),
    }
}

fn widemul_line(op: u8, imm: u8) -> String {
    match op % 11 {
        0 => format!("lia {imm}"),
        1 => format!("lib {imm}"),
        2 => "wmul".to_owned(),
        3 => "sqs".to_owned(),
        4 => "redund".to_owned(),
        5 => format!("sta {}", imm % 16),
        6 => format!("lda {}", imm % 16),
        7 => "wdiv".to_owned(),
        8 => "wrem".to_owned(),
        9 => format!("dsum {}", imm % 16),
        _ => "nop".to_owned(),
    }
}

/// Reads every cell of every storage, program counter included.
fn full_state(machine: &isdl::Machine, sim: &Xsim<'_>) -> Vec<BitVector> {
    let mut out = Vec::new();
    for (i, s) in machine.storages.iter().enumerate() {
        for a in 0..s.cells() {
            out.push(sim.state().read(isdl::rtl::StorageId(i), a).clone());
        }
    }
    out
}

fn check_all_configs(machine: &isdl::Machine, src: &str, seed_mem: &[u16]) -> Result<(), String> {
    let program = Assembler::new(machine).assemble(src).map_err(|e| format!("assembles: {e}"))?;
    let dm = machine.storage_by_name("DM").expect("DM").0;
    let run = |opt: OptLevel, core: CoreKind| {
        let options = XsimOptions { core, opt, ..XsimOptions::default() };
        let mut sim = Xsim::generate_with(machine, options).expect("generates");
        sim.load_program(&program);
        for (i, &v) in seed_mem.iter().enumerate() {
            sim.state_mut().poke(dm, i as u64, BitVector::from_u64(u64::from(v), 16));
        }
        let stop = sim.run(100_000);
        (stop, sim.stats().cycles, full_state(machine, &sim))
    };
    let baseline = run(OptLevel::None, CoreKind::Bytecode);
    if baseline.0 != StopReason::Halted {
        return Err(format!("baseline did not halt: {:?}", baseline.0));
    }
    for opt in [OptLevel::None, OptLevel::Basic, OptLevel::Aggressive, OptLevel::Full] {
        for core in [CoreKind::Bytecode, CoreKind::Tree] {
            let got = run(opt, core);
            if got != baseline {
                return Err(format!("opt={opt} core={core:?} diverges for:\n{src}"));
            }
        }
    }
    Ok(())
}

/// Runs every pass as a one-entry schedule (the `--opt-passes`
/// mechanism) and requires bit-identical state against the
/// unoptimized baseline: each pass must be semantics-preserving on
/// its own, not only in its scheduled position.
fn check_isolated_passes(
    machine: &isdl::Machine,
    src: &str,
    seed_mem: &[u16],
) -> Result<(), String> {
    let program = Assembler::new(machine).assemble(src).map_err(|e| format!("assembles: {e}"))?;
    let dm = machine.storage_by_name("DM").expect("DM").0;
    let run = |passes: Option<PassList>| {
        let opt = if passes.is_some() { OptLevel::Full } else { OptLevel::None };
        let options = XsimOptions { opt, passes, ..XsimOptions::default() };
        let mut sim = Xsim::generate_with(machine, options).expect("generates");
        sim.load_program(&program);
        for (i, &v) in seed_mem.iter().enumerate() {
            sim.state_mut().poke(dm, i as u64, BitVector::from_u64(u64::from(v), 16));
        }
        let stop = sim.run(100_000);
        (stop, sim.stats().cycles, full_state(machine, &sim))
    };
    let baseline = run(None);
    if baseline.0 != StopReason::Halted {
        return Err(format!("baseline did not halt: {:?}", baseline.0));
    }
    for pass in PassKind::ALL {
        let list = PassList::from_slice(&[pass]).expect("one pass fits");
        let got = run(Some(list));
        if got != baseline {
            return Err(format!("isolated pass `{pass}` diverges for:\n{src}"));
        }
    }
    Ok(())
}

/// The level-3 pipeline must be a pure function of its input: two
/// runs over the same RTL produce identical statements and identical
/// per-pass statistics.
fn check_pipeline_determinism(machine: &isdl::Machine) -> Result<(), String> {
    let pipeline = Pipeline::for_level(OptLevel::Full);
    for field in &machine.fields {
        for op in &field.ops {
            for phase in [&op.action, &op.side_effects] {
                let mut s1 = isdl::opt::OptStats::default();
                let mut s2 = isdl::opt::OptStats::default();
                let o1 = pipeline.run(phase, &mut s1);
                let o2 = pipeline.run(phase, &mut s2);
                if o1 != o2 {
                    return Err(format!("{}: nondeterministic output", op.name));
                }
                if format!("{s1:?}") != format!("{s2:?}") {
                    return Err(format!("{}: nondeterministic stats", op.name));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_toy_programs_are_opt_invariant(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<bool>()),
            1..24,
        ),
        seed_mem in proptest::collection::vec(any::<u16>(), 8),
    ) {
        let mut src = String::new();
        for (op, d, a, b, imm, mode) in &ops {
            src.push_str(&toy_line(*op, *d, *a, *b, *imm, *mode));
            src.push('\n');
        }
        src.push_str("__stop: jmp __stop\n");
        check_all_configs(toy(), &src, &seed_mem).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn random_widemul_programs_are_opt_invariant(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24),
        seed_mem in proptest::collection::vec(any::<u16>(), 8),
    ) {
        let mut src = String::new();
        for (op, imm) in &ops {
            src.push_str(&widemul_line(*op, *imm));
            src.push('\n');
        }
        src.push_str("halt\n");
        check_all_configs(widemul(), &src, &seed_mem).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn random_widemul_programs_survive_each_pass_in_isolation(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..16),
        seed_mem in proptest::collection::vec(any::<u16>(), 8),
    ) {
        let mut src = String::new();
        for (op, imm) in &ops {
            src.push_str(&widemul_line(*op, *imm));
            src.push('\n');
        }
        src.push_str("halt\n");
        check_isolated_passes(widemul(), &src, &seed_mem).map_err(TestCaseError::fail)?;
    }
}

#[test]
fn level3_pipeline_is_deterministic_on_every_sample_machine() {
    for src in [
        isdl::samples::TOY,
        isdl::samples::ACC16,
        isdl::samples::WIDEMUL,
        isdl::samples::SPAM,
        isdl::samples::SPAM2,
    ] {
        let machine = isdl::load(src).expect("loads");
        check_pipeline_determinism(&machine).expect("deterministic");
    }
}
