//! End-to-end coverage of multi-word instructions (`Size` cost > 1,
//! §2.1.3 part 5c) and the remaining storage classes (stack, control
//! register, memory-mapped I/O) across the whole tool chain:
//! assembler, simulator, and hardware model.

use bitv::BitVector;
use gensim::{StopReason, Xsim};
use hgen::{synthesize, HgenOptions};
use vlog::sim::NetlistSim;
use xasm::Assembler;

/// A 16-bit machine with a two-word load-immediate, a hardware stack
/// with call/return, a control register, and memory-mapped I/O.
const WIDE: &str = r#"
machine "wide" { format { word 16; } }

storage {
    imem IM 16 x 64;
    dmem DM 16 x 32;
    regfile RF 16 x 4;
    register SP 3;
    creg MODE 2;
    mmio OUT 16 x 4;
    stack STK 16 x 8;
    pc PC 6;
}

tokens {
    token REG reg("R", 4);
    token IMM16 imm(16, unsigned);
    token T6 imm(6, unsigned);
    token M2 imm(2, unsigned);
}

field MAIN {
    // Two-word operation: opcode in word 0, immediate is word 1.
    op limm(d: REG, v: IMM16) {
        encode { word[15:12] = 0b0001; word[11:10] = d; word[31:16] = v; }
        action { RF[d] <- v; }
        cost { size 2; }
    }
    op add(d: REG, a: REG, b: REG) {
        encode { word[15:12] = 0b0010; word[11:10] = d; word[9:8] = a; word[7:6] = b; }
        action { RF[d] <- RF[a] + RF[b]; }
    }
    op call(t: T6) {
        encode { word[15:12] = 0b0011; word[5:0] = t; }
        action {
            STK[zext(SP, 3)] <- zext(PC, 16) + 16'd1;
            SP <- SP + 3'd1;
            PC <- t;
        }
        cost { cycle 1; stall 1; }
    }
    op ret() {
        encode { word[15:12] = 0b0100; }
        action {
            SP <- SP - 3'd1;
            PC <- trunc(STK[zext(SP, 3) - 3'd1], 6);
        }
        cost { cycle 1; stall 1; }
    }
    op setmode(m: M2) {
        encode { word[15:12] = 0b0101; word[1:0] = m; }
        action { MODE <- m; }
    }
    op emit(a: M2, s: REG) {
        encode { word[15:12] = 0b0110; word[11:10] = s; word[1:0] = a; }
        action { OUT[a] <- RF[s]; }
    }
    op jmp(t: T6) {
        encode { word[15:12] = 0b0111; word[5:0] = t; }
        action { PC <- t; }
        cost { cycle 1; stall 1; }
    }
    op halt() { encode { word[15:12] = 0b1111; } }
    op nop() { encode { word[15:12] = 0b0000; } }
}
"#;

const PROGRAM: &str = "\
start: limm R0, 51966       ; 0xCAFE — two words
       limm R1, 4660        ; 0x1234
       add R2, R0, R1
       setmode 2
       call sub1
       emit 1, R3
end:   jmp end              ; hardware-friendly halt (self-loop)
sub1:  add R3, R2, R2
       ret
";

#[test]
fn multiword_stack_creg_mmio_simulate() {
    let m = isdl::load(WIDE).expect("loads");
    assert_eq!(m.max_op_size(), 2);
    let p = Assembler::new(&m).assemble(PROGRAM).expect("assembles");
    // limm is two words: the listing addresses reflect sizes.
    assert_eq!(p.labels["start"], 0);
    assert_eq!(p.labels["sub1"], 9);
    assert_eq!(p.labels["end"], 8);

    let mut sim = Xsim::generate(&m).expect("generates");
    sim.load_program(&p);
    assert_eq!(sim.run(1_000), StopReason::Halted);

    let rf = m.storage_by_name("RF").expect("RF").0;
    assert_eq!(sim.state().read_u64(rf, 0), 51966);
    assert_eq!(sim.state().read_u64(rf, 1), 4660);
    assert_eq!(sim.state().read_u64(rf, 2), (51966 + 4660) & 0xFFFF);
    assert_eq!(sim.state().read_u64(rf, 3), (2 * (51966 + 4660)) & 0xFFFF);
    let mode = m.storage_by_name("MODE").expect("MODE").0;
    assert_eq!(sim.state().read_u64(mode, 0), 2);
    let out = m.storage_by_name("OUT").expect("OUT").0;
    assert_eq!(sim.state().read_u64(out, 1), (2 * (51966 + 4660)) & 0xFFFF);
    let sp = m.storage_by_name("SP").expect("SP").0;
    assert_eq!(sim.state().read_u64(sp, 0), 0, "stack balanced after return");
}

#[test]
fn multiword_disassembles_back_to_text() {
    let m = isdl::load(WIDE).expect("loads");
    let p = Assembler::new(&m).assemble(PROGRAM).expect("assembles");
    let d = xasm::Disassembler::new(&m);
    let i = d.decode(&p.words[0..2], 0).expect("decodes");
    assert_eq!(i.size, 2);
    assert_eq!(d.format_instr(&i), "limm R0, 51966");
}

#[test]
fn multiword_hardware_model_matches_ils() {
    let m = isdl::load(WIDE).expect("loads");
    let p = Assembler::new(&m).assemble(PROGRAM).expect("assembles");
    let mut xsim = Xsim::generate(&m).expect("generates");
    xsim.load_program(&p);
    assert_eq!(xsim.run(1_000), StopReason::Halted);

    let hw = synthesize(&m, HgenOptions::default()).expect("synthesizes");
    let mut hsim = NetlistSim::elaborate(&hw.module).expect("elaborates");
    for (a, w) in p.words.iter().enumerate() {
        hsim.poke_memory("IM", a as u64, w.clone()).expect("pokes");
    }
    hsim.clock(4 * xsim.stats().cycles + 16).expect("clocks");

    let rf = m.storage_by_name("RF").expect("RF").0;
    for r in 0..4u64 {
        assert_eq!(xsim.state().read(rf, r), hsim.peek_memory("RF", r).expect("mem"), "RF[{r}]");
    }
    assert_eq!(
        xsim.state().read(m.storage_by_name("MODE").expect("MODE").0, 0),
        hsim.peek("MODE").expect("net"),
        "control register"
    );
    let out = m.storage_by_name("OUT").expect("OUT").0;
    for a in 0..4u64 {
        assert_eq!(xsim.state().read(out, a), hsim.peek_memory("OUT", a).expect("mem"), "OUT[{a}]");
    }
    assert_eq!(
        xsim.state().read(m.storage_by_name("SP").expect("SP").0, 0),
        hsim.peek("SP").expect("net"),
        "stack pointer"
    );
}

#[test]
fn wide_immediates_round_trip_all_bits() {
    let m = isdl::load(WIDE).expect("loads");
    let asm = Assembler::new(&m);
    for v in [0u64, 1, 0x8000, 0xFFFF, 0xA5A5] {
        let p = asm.assemble(&format!("limm R3, {v}\nhalt\n")).expect("assembles");
        let mut sim = Xsim::generate(&m).expect("generates");
        sim.load_program(&p);
        assert_eq!(sim.run(100), StopReason::Halted);
        let rf = m.storage_by_name("RF").expect("RF").0;
        assert_eq!(sim.state().read_u64(rf, 3), v);
        assert_eq!(p.words[1], BitVector::from_u64(v, 16), "immediate is the second word");
    }
}
