//! Closes the Figure-1 loop through the description format: the
//! machine the explorer produces is printed back to ISDL text,
//! reloaded, and must evaluate to the same measurements — "the above
//! methodology only uses a single description avoiding consistency
//! issues" (paper §4.1).

use archex::explore::Explorer;
use archex::{evaluate, workloads};
use hgen::HgenOptions;

#[test]
fn explored_machine_round_trips_through_isdl_text() {
    let start = isdl::load(isdl::samples::TOY).expect("loads");
    let kernels = vec![workloads::dot_product(3), workloads::vector_update(2)];
    let explorer = Explorer { max_steps: 4, ..Explorer::default() };
    let trace = explorer.run(&start, &kernels).expect("explores");
    assert!(trace.steps.len() > 1, "exploration found improvements");

    // Print the improved candidate back to ISDL source and reload it.
    let text = isdl::printer::print(&trace.machine);
    let reloaded = isdl::load(&text)
        .unwrap_or_else(|e| panic!("explored machine prints to loadable ISDL: {e}\n{text}"));
    assert_eq!(reloaded, trace.machine, "round trip is exact");

    // The reloaded description evaluates to identical measurements.
    let a = evaluate(&trace.machine, &kernels, HgenOptions::default()).expect("evaluates");
    let b = evaluate(&reloaded, &kernels, HgenOptions::default()).expect("evaluates");
    assert_eq!(a.metrics.cycles, b.metrics.cycles);
    assert_eq!(a.metrics.cycle_ns, b.metrics.cycle_ns);
    assert_eq!(a.metrics.area_cells, b.metrics.area_cells);
    assert_eq!(a.metrics.lines_of_verilog, b.metrics.lines_of_verilog);
}

#[test]
fn exploration_never_breaks_the_workload() {
    // Every accepted step's machine still computes the right answers —
    // re-verify the final machine's dot product against the closed
    // form.
    let start = isdl::load(isdl::samples::TOY).expect("loads");
    let n = 4;
    let kernels = vec![workloads::dot_product(n)];
    let explorer = Explorer { max_steps: 5, ..Explorer::default() };
    let trace = explorer.run(&start, &kernels).expect("explores");

    let compiled = archex::compile(&trace.machine, &kernels[0]).expect("still compiles");
    let program = xasm::Assembler::new(&trace.machine).assemble(&compiled.asm).expect("assembles");
    let mut sim = gensim::Xsim::generate(&trace.machine).expect("generates");
    sim.load_program(&program);
    assert_eq!(sim.run(100_000), gensim::StopReason::Halted);
    let dm = trace.machine.storage_by_name("DM").expect("DM").0;
    assert_eq!(sim.state().read_u64(dm, 2 * n), workloads::dot_product_expected(n),);
}
