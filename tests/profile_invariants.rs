//! Cycle-attribution profiler invariants (`xsim-profile/1`, see
//! docs/OBSERVABILITY.md): the per-PC table is a *partition* of the
//! machine-wide counters — cycles and stall cycles sum exactly to the
//! totals — every stall row names its causing storage and producer PC,
//! and enabling the profiler changes nothing about the simulation
//! itself.

use archex::{compile, workloads};
use gensim::{profile_json, stats_json, StopReason, Xsim};
use obs::Json;
use xasm::Assembler;

/// The WIDEMUL exercise program from the optimizer differential suite:
/// wide multiplies back to back, so result-latency stalls fire.
const WIDEMUL_PROG: &str = "\
    lia 255
    lib 255
    wmul
    wmul
    sqs
    redund
    sta 3
    halt
";

fn spam_fixture() -> (isdl::Machine, String) {
    let m = isdl::load(isdl::samples::SPAM).expect("SPAM loads");
    let compiled = compile(&m, &workloads::fir(3, 8)).expect("FIR compiles");
    (m, compiled.asm)
}

fn widemul_fixture() -> (isdl::Machine, String) {
    let m = isdl::load(isdl::samples::WIDEMUL).expect("WIDEMUL loads");
    (m, WIDEMUL_PROG.to_owned())
}

/// Runs `asm` on `machine` with the profiler enabled and returns the
/// finished simulator.
fn run_profiled<'m>(machine: &'m isdl::Machine, asm: &str) -> Xsim<'m> {
    let program = Assembler::new(machine).assemble(asm).expect("assembles");
    let mut sim = Xsim::generate(machine).expect("generates");
    sim.load_program(&program);
    sim.enable_profile();
    assert_eq!(sim.run(1_000_000), StopReason::Halted);
    sim
}

fn check_partition_invariants(sim: &Xsim<'_>) {
    let stats = sim.stats().clone();
    let report = profile_json(sim);
    assert_eq!(report.get_str("schema"), Some(gensim::PROFILE_SCHEMA));
    assert_eq!(report.get_u64("cycles"), Some(stats.cycles));
    assert_eq!(report.get_u64("stall_cycles"), Some(stats.stall_cycles));

    let pcs = report.get("pcs").and_then(Json::as_arr).expect("pcs table");
    let sum = |key: &str| -> u64 {
        pcs.iter().map(|r| r.get_u64(key).unwrap_or_else(|| panic!("row missing {key}"))).sum()
    };
    assert_eq!(sum("cycles"), stats.cycles, "per-PC cycles partition the total");
    assert_eq!(sum("stall_cycles"), stats.stall_cycles, "per-PC stalls partition the total");
    assert_eq!(sum("issues"), stats.instructions, "per-PC issues sum to instructions");

    // Regions partition the same totals (every PC lies in exactly one
    // region).
    let regions = report.get("regions").and_then(Json::as_arr).expect("regions");
    let rsum = |key: &str| -> u64 { regions.iter().filter_map(|r| r.get_u64(key)).sum() };
    assert_eq!(rsum("cycles"), stats.cycles, "region cycles partition the total");
    assert_eq!(rsum("stall_cycles"), stats.stall_cycles, "region stalls partition the total");

    // Every stall is attributed: causing storage (or usage field) and
    // the producer PC that charged it.
    for row in pcs {
        if row.get_u64("stall_cycles").unwrap_or(0) == 0 {
            continue;
        }
        let cause = row.get("stall_cause").expect("stalled row carries a cause");
        assert!(!matches!(cause, Json::Null), "stalled row cause is non-null");
        let kind = cause.get_str("kind").expect("cause kind");
        assert!(kind == "data" || kind == "usage", "known cause kind, got {kind}");
        let storage = cause.get_str("storage").expect("cause names the storage");
        assert!(!storage.is_empty());
        assert!(cause.get_u64("producer_pc").is_some(), "cause names the producer PC");
    }
}

#[test]
fn spam_profile_partitions_machine_counters() {
    let (m, asm) = spam_fixture();
    let sim = run_profiled(&m, &asm);
    // The stall-attribution arm is exercised for real: the MAC's
    // result latency forces data-hazard stalls in the FIR loop.
    assert!(sim.stats().stall_cycles > 0, "MAC latency forces stalls");
    check_partition_invariants(&sim);
}

#[test]
fn widemul_profile_partitions_machine_counters() {
    let (m, asm) = widemul_fixture();
    let sim = run_profiled(&m, &asm);
    check_partition_invariants(&sim);
}

#[test]
fn profiler_is_purely_observational() {
    for (m, asm) in [spam_fixture(), widemul_fixture()] {
        let program = Assembler::new(&m).assemble(&asm).expect("assembles");
        let run = |profile: bool| {
            let mut sim = Xsim::generate(&m).expect("generates");
            sim.load_program(&program);
            if profile {
                sim.enable_profile();
            }
            assert_eq!(sim.run(1_000_000), StopReason::Halted);
            // The full stats report covers counters, per-op retire
            // counts, and field utilization; state reads cover the
            // architectural outcome.
            let state: Vec<String> = (0..m.storages.len())
                .flat_map(|si| {
                    let s = isdl::rtl::StorageId(si);
                    (0..m.storages[si].cells()).map(move |a| (s, a))
                })
                .map(|(s, a)| format!("{:x}", sim.state().read(s, a)))
                .collect();
            (stats_json(&sim).to_pretty(), state)
        };
        let plain = run(false);
        let profiled = run(true);
        assert_eq!(plain.0, profiled.0, "{}: stats bit-identical", m.name);
        assert_eq!(plain.1, profiled.1, "{}: final state bit-identical", m.name);
    }
}

#[test]
fn unlabeled_prefix_lands_in_the_synthetic_entry_region() {
    // The first two instructions precede any code label, so region
    // bucketing must not fold them into the first labeled region: they
    // belong to the synthetic `(entry)` region that spans [0, first
    // label).
    let m = isdl::load(isdl::samples::ACC16).expect("ACC16 loads");
    let sim = run_profiled(&m, "ldi 3\nsta 0\nbody: lda 0\nhalt\n");
    check_partition_invariants(&sim);

    let report = profile_json(&sim);
    let regions = report.get("regions").and_then(Json::as_arr).expect("regions");
    let entry = regions
        .iter()
        .find(|r| r.get_str("name") == Some("(entry)"))
        .expect("synthetic (entry) region present");
    assert_eq!(entry.get_u64("start"), Some(0));
    assert_eq!(entry.get_u64("end"), Some(2), "(entry) ends at the first label");
    assert_eq!(entry.get_u64("issues"), Some(2), "ldi and sta are attributed to (entry)");
    assert_eq!(entry.get_u64("cycles"), Some(2));
    let body =
        regions.iter().find(|r| r.get_str("name") == Some("body")).expect("labeled region present");
    assert_eq!(body.get_u64("start"), Some(2));
    assert_eq!(body.get_u64("issues"), Some(2), "lda and halt are attributed to body");
}

#[test]
fn spam_regions_follow_code_labels() {
    let (m, asm) = spam_fixture();
    let sim = run_profiled(&m, &asm);
    let report = profile_json(&sim);
    let regions = report.get("regions").and_then(Json::as_arr).expect("regions");
    let names: Vec<&str> = regions.iter().filter_map(|r| r.get_str("name")).collect();
    // The compiled kernel carries at least its `__end` label; any
    // unlabeled prefix is attributed to the synthetic entry region.
    assert!(!names.is_empty());
    for w in regions.windows(2) {
        let (a, b) = (w[0].get_u64("start").expect("start"), w[1].get_u64("start").expect("start"));
        assert!(a < b, "regions sorted by address");
    }
    // The hot region is where the cycles went: a dominant share lives
    // in one region (the FIR loop), which is the point of the report.
    let total: u64 = regions.iter().filter_map(|r| r.get_u64("cycles")).sum();
    let max: u64 = regions.iter().filter_map(|r| r.get_u64("cycles")).max().unwrap_or(0);
    assert!(max * 2 > total, "one region dominates: {names:?}");
}
