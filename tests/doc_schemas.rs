//! Every ```json example in `docs/OBSERVABILITY.md` must be valid
//! JSON: each fenced block is extracted and round-tripped through the
//! `obs::Json` RFC 8259 parser, so schema documentation can never
//! drift into pseudo-JSON (`{ ... }` placeholders and the like).

use obs::Json;

/// Returns the contents of every ```json fence in `text`, in order.
fn json_fences(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut block: Option<(usize, String)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        match &mut block {
            None if trimmed == "```json" => block = Some((lineno + 1, String::new())),
            Some(_) if trimmed == "```" => out.push(block.take().expect("open block")),
            Some((_, body)) => {
                body.push_str(line);
                body.push('\n');
            }
            None => {}
        }
    }
    assert!(block.is_none(), "unterminated ```json fence");
    out
}

#[test]
fn every_documented_json_example_parses() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/OBSERVABILITY.md");
    let text = std::fs::read_to_string(path).expect("docs/OBSERVABILITY.md readable");
    let fences = json_fences(&text);
    assert!(fences.len() >= 6, "expected the documented schema examples, found {}", fences.len());
    for (line, body) in fences {
        let parsed = Json::parse(&body)
            .unwrap_or_else(|e| panic!("docs/OBSERVABILITY.md:{line}: invalid JSON: {e}"));
        // Render → parse is a fixed point: the serializer emits what
        // the parser accepts, byte for byte the second time around.
        let rendered = parsed.to_pretty();
        let reparsed = Json::parse(&rendered).unwrap_or_else(|e| {
            panic!("docs/OBSERVABILITY.md:{line}: render not reparseable: {e}")
        });
        assert_eq!(reparsed.to_pretty(), rendered, "docs/OBSERVABILITY.md:{line}");
    }
}
