//! Every ```json example in the schema-bearing docs must be valid
//! JSON: each fenced block is extracted and round-tripped through the
//! `obs::Json` RFC 8259 parser, so schema documentation can never
//! drift into pseudo-JSON (`{ ... }` placeholders and the like).

use obs::Json;

/// The docs that carry ```json schema examples, with the minimum
/// number of fences each is expected to hold — a guard against the
/// extraction silently matching nothing after an edit.
const DOCS: [(&str, usize); 3] =
    [("docs/OBSERVABILITY.md", 11), ("docs/SIMULATORS.md", 1), ("docs/ROBUSTNESS.md", 0)];

/// Returns the contents of every ```json fence in `text`, in order.
fn json_fences(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut block: Option<(usize, String)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        match &mut block {
            None if trimmed == "```json" => block = Some((lineno + 1, String::new())),
            Some(_) if trimmed == "```" => out.push(block.take().expect("open block")),
            Some((_, body)) => {
                body.push_str(line);
                body.push('\n');
            }
            None => {}
        }
    }
    assert!(block.is_none(), "unterminated ```json fence");
    out
}

#[test]
fn every_documented_json_example_parses() {
    for (doc, min_fences) in DOCS {
        let path = format!("{}/{doc}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{doc}: {e}"));
        let fences = json_fences(&text);
        assert!(
            fences.len() >= min_fences,
            "{doc}: expected at least {min_fences} ```json examples, found {}",
            fences.len()
        );
        for (line, body) in fences {
            let parsed =
                Json::parse(&body).unwrap_or_else(|e| panic!("{doc}:{line}: invalid JSON: {e}"));
            // Render → parse is a fixed point: the serializer emits
            // what the parser accepts, byte for byte the second time
            // around.
            let rendered = parsed.to_pretty();
            let reparsed = Json::parse(&rendered)
                .unwrap_or_else(|e| panic!("{doc}:{line}: render not reparseable: {e}"));
            assert_eq!(reparsed.to_pretty(), rendered, "{doc}:{line}");
        }
    }
}
