//! End-to-end tests on SPAM — the paper's 4-way VLIW evaluation
//! target — and its reduced sibling SPAM2.

use archex::{compile, workloads};
use gensim::{StopReason, Xsim};
use hgen::{synthesize, HgenOptions};
use isdl::samples::{SPAM, SPAM2};
use vlog::sim::NetlistSim;
use xasm::Assembler;

#[test]
fn spam_vliw_instruction_packs_seven_fields() {
    let m = isdl::load(SPAM).expect("loads");
    let asm = "\
start: li R1, 10 | ALU1.li R2, 20
       add R3, R1, reg(R2) | ALU1.sub R4, R2, reg(R1) | mac R1, R2 | ld R5, 100 | mv R8, R1 | MOV1.mv R6, R1 | MOV2.mv R7, R2
end:   jmp end
";
    let p = Assembler::new(&m).assemble(asm).expect("assembles");
    let mut sim = Xsim::generate(&m).expect("generates");
    let dm = m.storage_by_name("DM").expect("DM").0;
    sim.load_program(&p);
    sim.state_mut().poke(dm, 100, bitv::BitVector::from_u64(777, 32));
    assert_eq!(sim.run(1_000), StopReason::Halted);
    let rf = m.storage_by_name("RF").expect("RF").0;
    assert_eq!(sim.state().read_u64(rf, 3), 30, "ALU0 add");
    assert_eq!(sim.state().read_u64(rf, 4), 10, "ALU1 sub");
    assert_eq!(sim.state().read_u64(rf, 5), 777, "parallel load");
    assert_eq!(sim.state().read_u64(rf, 8), 10, "move 0");
    assert_eq!(sim.state().read_u64(rf, 6), 10, "move 1");
    assert_eq!(sim.state().read_u64(rf, 7), 20, "move 2");
    let acc = m.storage_by_name("ACC").expect("ACC").0;
    assert_eq!(sim.state().read_u64(acc, 0), 200, "MAC in the same instruction");
    // Every field did useful work in instruction 2.
    let busy: Vec<u64> = sim.stats().field_busy.clone();
    assert!(busy.iter().all(|&b| b >= 1), "all 7 fields busy at least once: {busy:?}");
}

#[test]
fn spam_shift_constraint_enforced_by_assembler() {
    let m = isdl::load(SPAM).expect("loads");
    let asm = Assembler::new(&m);
    let e = asm
        .assemble("shl R1, R2, reg(R3) | ALU1.shr R4, R5, reg(R6)\n")
        .expect_err("one shared shifter");
    assert!(e.msg.contains("constraint"), "{e}");
    // A shift paired with a non-shift ALU1 op is fine.
    assert!(asm.assemble("shl R1, R2, reg(R3) | ALU1.add R4, R5, reg(R6)\n").is_ok());
}

#[test]
fn spam_runs_compiled_fir_with_mul_stalls() {
    let m = isdl::load(SPAM).expect("loads");
    let kernel = workloads::fir(3, 8);
    let compiled = compile(&m, &kernel).expect("compiles");
    let p = Assembler::new(&m).assemble(&compiled.asm).expect("assembles");
    let mut sim = Xsim::generate(&m).expect("generates");
    sim.load_program(&p);
    assert_eq!(sim.run(1_000_000), StopReason::Halted);
    assert!(sim.stats().stall_cycles > 0, "MAC latency 3 forces stalls");
    // Reference FIR.
    let dm = m.storage_by_name("DM").expect("DM").0;
    let coeff: Vec<u64> = (0..3).map(|i| 1 + i).collect();
    let input: Vec<u64> = (0..8).map(|i| (i * 3 + 1) % 17).collect();
    for o in 0..6usize {
        let expect: u64 = (0..3).map(|t| coeff[t] * input[o + 2 - t]).sum();
        assert_eq!(sim.state().read_u64(dm, (11 + o) as u64), expect, "output {o}");
    }
}

#[test]
fn spam2_runs_compiled_vector_update() {
    let m = isdl::load(SPAM2).expect("loads");
    let kernel = workloads::vector_update(4);
    let compiled = compile(&m, &kernel).expect("compiles");
    let p = Assembler::new(&m).assemble(&compiled.asm).expect("assembles");
    let mut sim = Xsim::generate(&m).expect("generates");
    sim.load_program(&p);
    assert_eq!(sim.run(1_000_000), StopReason::Halted);
    let dm = m.storage_by_name("DM").expect("DM").0;
    for i in 0..4u64 {
        let expect = (10 + i) + (5 + 2 * i) - 4;
        assert_eq!(sim.state().read_u64(dm, 8 + i), expect, "element {i}");
    }
}

#[test]
fn spam_hardware_model_matches_ils() {
    let m = isdl::load(SPAM).expect("loads");
    let asm = "\
start: li R1, 6 | ALU1.li R2, 7
       clracc
       mac R1, R2
       mac R1, R2
       mvacc R3
       st 50, R3
       add R4, R1, ind(R1) | MOV1.mv R5, R2
       st 51, R4
end:   jmp end
";
    let p = Assembler::new(&m).assemble(asm).expect("assembles");
    let mut xsim = Xsim::generate(&m).expect("generates");
    sim_setup(&m, &mut xsim, &p);
    assert_eq!(xsim.run(10_000), StopReason::Halted);

    let hw = synthesize(&m, HgenOptions::default()).expect("synthesizes");
    let mut hsim = NetlistSim::elaborate(&hw.module).expect("elaborates");
    for (a, w) in p.words.iter().enumerate() {
        hsim.poke_memory("IM", a as u64, w.clone()).expect("pokes");
    }
    hsim.poke_memory("DM", 6, bitv::BitVector::from_u64(1000, 32)).expect("pokes");
    hsim.clock(4 * xsim.stats().cycles + 16).expect("clocks");

    let rf = m.storage_by_name("RF").expect("RF").0;
    let dm = m.storage_by_name("DM").expect("DM").0;
    for r in 0..16u64 {
        assert_eq!(
            xsim.state().read(rf, r),
            hsim.peek_memory("RF", r).expect("mem"),
            "RF[{r}] differs"
        );
    }
    for a in [50u64, 51] {
        assert_eq!(
            xsim.state().read(dm, a),
            hsim.peek_memory("DM", a).expect("mem"),
            "DM[{a}] differs"
        );
    }
    assert_eq!(
        xsim.state().read(m.storage_by_name("ACC").expect("ACC").0, 0),
        hsim.peek("ACC").expect("net"),
        "accumulator differs"
    );
}

fn sim_setup(m: &isdl::Machine, sim: &mut Xsim<'_>, p: &xasm::Program) {
    sim.load_program(p);
    let dm = m.storage_by_name("DM").expect("DM").0;
    sim.state_mut().poke(dm, 6, bitv::BitVector::from_u64(1000, 32));
}

#[test]
fn spam_synthesis_is_larger_and_slower_than_spam2() {
    // The Table 2 relationship: the 4-way SPAM dominates the reduced
    // SPAM2 in every physical dimension.
    let spam = isdl::load(SPAM).expect("loads");
    let spam2 = isdl::load(SPAM2).expect("loads");
    let r1 = synthesize(&spam, HgenOptions::default()).expect("synthesizes");
    let r2 = synthesize(&spam2, HgenOptions::default()).expect("synthesizes");
    assert!(r1.report.area_cells > r2.report.area_cells);
    assert!(r1.lines_of_verilog > r2.lines_of_verilog);
    assert!(r1.report.cycle_ns >= r2.report.cycle_ns);
}

#[test]
fn hand_packed_vliw_beats_sequential_code() {
    // Paper §6.2: "a human programmer decides to optimize the output of
    // the retargetable compiler by hand" — pack independent operations
    // into SPAM's parallel fields and measure the cycle win.
    let m = isdl::load(SPAM).expect("loads");
    let run = |src: &str| {
        let p = Assembler::new(&m).assemble(src).expect("assembles");
        let mut sim = Xsim::generate(&m).expect("generates");
        sim.load_program(&p);
        assert_eq!(sim.run(10_000), StopReason::Halted);
        let dm = m.storage_by_name("DM").expect("DM").0;
        (sim.stats().cycles, sim.state().read_u64(dm, 20), sim.state().read_u64(dm, 21))
    };

    // Sequential: one operation per instruction (compiler style).
    let sequential = "\
start: li R0, 3
       li R1, 4
       li R2, 5
       li R3, 6
       add R4, R0, reg(R1)
       add R5, R2, reg(R3)
       st 20, R4
       st 21, R5
end:   jmp end
";
    // Hand-packed: both ALUs work in parallel.
    let packed = "\
start: li R0, 3 | ALU1.li R1, 4
       li R2, 5 | ALU1.li R3, 6
       add R4, R0, reg(R1) | ALU1.add R5, R2, reg(R3)
       st 20, R4
       st 21, R5
end:   jmp end
";
    let (seq_cycles, a, b) = run(sequential);
    let (packed_cycles, pa, pb) = run(packed);
    assert_eq!((a, b), (7, 11), "sequential result");
    assert_eq!((pa, pb), (7, 11), "packed result matches");
    assert!(
        packed_cycles < seq_cycles,
        "VLIW packing must save cycles: {packed_cycles} !< {seq_cycles}"
    );
}

#[test]
fn spam_runs_matmul() {
    let m = isdl::load(SPAM).expect("loads");
    let kernel = workloads::matmul(3);
    let compiled = compile(&m, &kernel).expect("compiles");
    let p = Assembler::new(&m).assemble(&compiled.asm).expect("assembles");
    let mut sim = Xsim::generate(&m).expect("generates");
    sim.load_program(&p);
    assert_eq!(sim.run(1_000_000), StopReason::Halted);
    let dm = m.storage_by_name("DM").expect("DM").0;
    for (i, &e) in workloads::matmul_expected(3).iter().enumerate() {
        assert_eq!(sim.state().read_u64(dm, 18 + i as u64), e, "C[{i}]");
    }
}
