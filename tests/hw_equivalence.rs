//! The strongest correctness check in the suite: the HGEN-generated
//! synthesizable model and the GENSIM-generated instruction-level
//! simulator must agree bit-for-bit on the architectural state after
//! executing the same program — "the synthesizable Verilog model is
//! itself a simulator" (paper §4.2).

use bitv::BitVector;
use gensim::{StopReason, Xsim};
use hgen::{synthesize, DecodeStyle, HgenOptions, ShareOptions};
use isdl::Machine;
use vlog::{AnySim, SimBackend};
use xasm::{Assembler, Program};

/// Runs `program` on XSIM until it halts; returns the simulator.
fn run_xsim<'m>(machine: &'m Machine, program: &Program) -> Xsim<'m> {
    let mut sim = Xsim::generate(machine).expect("generates");
    sim.load_program(program);
    assert_eq!(sim.run(1_000_000), StopReason::Halted, "program must halt");
    sim
}

/// Runs `program` on the generated hardware for `edges` clock cycles
/// with the chosen netlist backend.
fn run_hardware(
    machine: &Machine,
    program: &Program,
    options: HgenOptions,
    edges: u64,
    backend: SimBackend,
) -> AnySim {
    let result = synthesize(machine, options).expect("synthesizes");
    let mut sim = result.simulator(backend).expect("elaborates");
    let imem = machine.storage(machine.imem.expect("imem")).name.clone();
    let w = machine.word_width;
    for (a, word) in program.words.iter().enumerate() {
        sim.poke_memory(&imem, a as u64, word.trunc(w).zext(w)).expect("pokes");
    }
    if let Some(dm) =
        machine.storages.iter().find(|s| s.kind == isdl::model::StorageKind::DataMemory)
    {
        for &(addr, v) in &program.data {
            sim.poke_memory(&dm.name, addr, BitVector::from_i64(v, dm.width)).expect("pokes");
        }
    }
    sim.clock(edges).expect("clocks");
    sim
}

/// Asserts every data-carrying storage matches between the two models.
fn assert_state_matches(machine: &Machine, xsim: &Xsim<'_>, hw: &AnySim) {
    for (i, s) in machine.storages.iter().enumerate() {
        use isdl::model::StorageKind::*;
        match s.kind {
            ProgramCounter | InstructionMemory => continue,
            _ if s.kind.is_addressed() => {
                for a in 0..s.cells() {
                    let soft = xsim.state().read(isdl::rtl::StorageId(i), a);
                    let hard = hw.peek_memory(&s.name, a).expect("mem");
                    assert_eq!(*soft, hard, "{}[{a}] differs", s.name);
                }
            }
            _ => {
                let soft = xsim.state().read(isdl::rtl::StorageId(i), 0);
                let hard = hw.peek(&s.name).expect("net");
                assert_eq!(*soft, hard, "{} differs", s.name);
            }
        }
    }
}

/// Programs end with a self-loop so extra hardware clocks are
/// state-neutral. Every program is checked against both netlist
/// backends — the levelized compiler must preserve the event-driven
/// semantics exactly.
fn check_program(machine_src: &str, asm: &str, options: HgenOptions) {
    let machine = isdl::load(machine_src).expect("machine loads");
    let program = Assembler::new(&machine).assemble(asm).expect("assembles");
    let xsim = run_xsim(&machine, &program);
    // Generous edge budget: the hardware stalls at most as many extra
    // cycles as the ILS charged, and the trailing self-loop is inert.
    let edges = 4 * xsim.stats().cycles + 16;
    for backend in [SimBackend::Event, SimBackend::Levelized] {
        let hw = run_hardware(&machine, &program, options, edges, backend);
        assert_state_matches(&machine, &xsim, &hw);
    }
}

const ACC16_SUM: &str = "\
start: ldi 10
       sta 1
loop:  lda 0
       addm 1
       sta 0
       lda 1
       subm one
       sta 1
       jnz loop
       lda 0
end:   jmp end
.data
.org 60
one:   .word 1
";

#[test]
fn acc16_sum_loop_matches_hardware() {
    check_program(isdl::samples::ACC16, ACC16_SUM, HgenOptions::default());
}

#[test]
fn acc16_matches_with_sharing_disabled() {
    check_program(
        isdl::samples::ACC16,
        ACC16_SUM,
        HgenOptions {
            share: ShareOptions { enabled: false, ..ShareOptions::default() },
            ..HgenOptions::default()
        },
    );
}

#[test]
fn acc16_matches_with_naive_decode() {
    check_program(
        isdl::samples::ACC16,
        ACC16_SUM,
        HgenOptions { decode: DecodeStyle::NaiveComparator, ..HgenOptions::default() },
    );
}

const TOY_VLIW: &str = "\
start: li R1, 5
       li R2, 7
       li R3, 30
       add R4, R1, reg(R2) | mv R5, R1
       st 30, R4
       sub R6, R4, ind(R3)
       xor R7, R6, reg(R4)
       and R0, R7, reg(R7)
end:   jmp end
";

#[test]
fn toy_vliw_with_addressing_modes_matches_hardware() {
    check_program(isdl::samples::TOY, TOY_VLIW, HgenOptions::default());
}

const TOY_MAC: &str = "\
start: li R1, 3
       li R2, 4
       clracc
       mac R1, R2
       mac R1, R2
       nop
       mvacc R5
       st 10, R5
end:   jmp end
";

#[test]
fn toy_mac_latency_and_interlock_match_hardware() {
    // mac has latency 2: XSIM charges static stalls, the hardware's
    // scoreboard freezes the PC — the architectural result agrees.
    check_program(isdl::samples::TOY, TOY_MAC, HgenOptions::default());
}

#[test]
fn toy_conditional_branch_matches_hardware() {
    let src = "\
start: li R1, 1
       clracc
       jz taken
       li R2, 99
taken: li R3, 42
       st 5, R3
end:   jmp end
";
    check_program(isdl::samples::TOY, src, HgenOptions::default());
}

#[test]
fn hardware_cycle_count_matches_ils_when_hazard_free() {
    let machine = isdl::load(isdl::samples::ACC16).expect("loads");
    let program = Assembler::new(&machine)
        .assemble("ldi 1\nshl1\nshl1\nshl1\nend: jmp end\n")
        .expect("assembles");
    let xsim = run_xsim(&machine, &program);
    let result = synthesize(&machine, HgenOptions::default()).expect("synthesizes");
    for backend in [SimBackend::Event, SimBackend::Levelized] {
        let mut hw = result.simulator(backend).expect("elaborates");
        for (a, word) in program.words.iter().enumerate() {
            hw.poke_memory("IM", a as u64, word.clone()).expect("pokes");
        }
        // Clock exactly the ILS cycle count: state must already agree
        // (cycle-accuracy, not just eventual equivalence).
        hw.clock(xsim.stats().cycles).expect("clocks");
        assert_eq!(hw.peek("ACC").expect("net").to_u64_lossy(), 8, "{backend}");
        assert_eq!(
            hw.peek("ACC").expect("net"),
            *xsim.state().read(machine.storage_by_name("ACC").expect("ACC").0, 0),
            "{backend}"
        );
    }
}
