//! The case driver: a deterministic RNG, the run configuration, and
//! the per-case error type the assertion macros return.

use std::fmt;

/// A small, fast, deterministic generator (SplitMix64). Every test
/// case gets a stream derived from the test's name and the case index,
/// so failures reproduce exactly across runs and machines.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded directly with `seed`.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 128 uniformly random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }
}

/// How many cases to run (the subset of upstream proptest's
/// configuration that this vendored shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, like upstream; override with `PROPTEST_CASES`.
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        Self { cases }
    }
}

/// Why one generated case did not pass.
pub enum TestCaseError {
    /// An assertion failed — the whole property fails.
    Fail(String),
    /// A `prop_assume!` precondition rejected the inputs — the case is
    /// discarded and replaced, not counted as a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }

    /// A rejected (discarded) case with the given reason.
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(m) => write!(f, "case failed: {m}"),
            Self::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// What one generated case returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a over the test path — a stable per-test base seed.
fn seed_for(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if let Ok(v) = std::env::var("PROPTEST_SEED") {
        if let Ok(extra) = v.parse::<u64>() {
            h ^= extra;
        }
    }
    h
}

/// Runs `property` until `config.cases` cases pass, panicking on the
/// first failure with the case index and base seed (set `PROPTEST_SEED`
/// to vary the stream). Rejected cases are replaced, up to a cap.
///
/// # Panics
///
/// Panics if any generated case fails, or if rejections exhaust the
/// replacement budget before enough cases pass.
pub fn run_property_test<F>(config: &ProptestConfig, name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = seed_for(name);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = u64::from(config.cases).saturating_mul(8).max(1024);
    let mut case: u64 = 0;
    while passed < config.cases {
        let mut rng =
            TestRng::from_seed(base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        match property(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property `{name}`: too many rejected cases \
                     ({rejected} rejections for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed at case {case} \
                     (base seed {base:#018x}):\n{msg}"
                );
            }
        }
        case += 1;
    }
}
