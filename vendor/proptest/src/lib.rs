//! An offline, vendored drop-in for the subset of the
//! [proptest](https://crates.io/crates/proptest) API this workspace
//! uses.
//!
//! The workspace must build and test with **no network access** (see
//! `DESIGN.md`), so the registry dependency was replaced by this shim:
//! the same macros and combinators, backed by a deterministic
//! SplitMix64 stream seeded per test. Differences from upstream:
//!
//! * **no shrinking** — a failure reports the case index and base
//!   seed, which reproduce the inputs exactly;
//! * only the combinators the suites use are provided (integer ranges,
//!   tuples, `Just`, `any`, `prop_map`, `prop_oneof!`,
//!   `prop_recursive`, `prop_compose!`, `collection::vec`,
//!   `array::uniform*`);
//! * `ProptestConfig` carries only `cases` (env override:
//!   `PROPTEST_CASES`; stream override: `PROPTEST_SEED`).

pub mod strategy;
pub mod test_runner;

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive length domain for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self { min: exact, max_exclusive: exact + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Strategies for fixed-size arrays.
pub mod array {
    use crate::strategy::Strategy;

    macro_rules! uniform {
        ($($name:ident => $n:literal),+) => {
            $(
            /// An array of
            #[doc = stringify!($n)]
            /// independent draws from `element`.
            pub fn $name<S: Strategy>(
                element: S,
            ) -> impl Strategy<Value = [S::Value; $n]> {
                crate::strategy::from_fn(move |rng| {
                    std::array::from_fn(|_| element.new_value(rng))
                })
            }
            )+
        };
    }
    uniform!(uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4);
}

/// The glob import the property suites start from.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Declares property tests: an optional `#![proptest_config(..)]`
/// header followed by `#[test] fn name(pattern in strategy, ..) { .. }`
/// items. Each body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_property_test(
                    &__config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::new_value(&($strat), __rng);
                        )+
                        (|| -> $crate::test_runner::TestCaseResult {
                            $body
                            ::std::result::Result::Ok(())
                        })()
                    },
                );
            }
        )*
    };
}

/// Defines a named function returning a composite strategy. Supports
/// the one- and two-argument-list forms of upstream `prop_compose!`
/// (the second list may reference values bound by the first).
#[macro_export]
macro_rules! prop_compose {
    ( $(#[$meta:meta])* $vis:vis fn $name:ident $params:tt
      ( $( $arg1:pat in $strat1:expr ),+ $(,)? )
      ( $( $arg2:pat in $strat2:expr ),+ $(,)? )
      -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name $params -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::from_fn(move |__rng| {
                $(let $arg1 = $crate::strategy::Strategy::new_value(&($strat1), __rng);)+
                $(let $arg2 = $crate::strategy::Strategy::new_value(&($strat2), __rng);)+
                $body
            })
        }
    };
    ( $(#[$meta:meta])* $vis:vis fn $name:ident $params:tt
      ( $( $arg1:pat in $strat1:expr ),+ $(,)? )
      -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name $params -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::from_fn(move |__rng| {
                $(let $arg1 = $crate::strategy::Strategy::new_value(&($strat1), __rng);)+
                $body
            })
        }
    };
}

/// A uniform choice between alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!`, but fails only the surrounding property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails only the surrounding property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

/// Like `assert_ne!`, but fails only the surrounding property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?} != {:?}`", __l, __r);
    }};
}

/// Discards the current case (generating a replacement) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = Strategy::new_value(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::new_value(&(1u8..=255), &mut rng);
            assert!(w >= 1);
            let full = Strategy::new_value(&(0u128..=u128::MAX), &mut rng);
            let _ = full; // any value is in range; just must not panic
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = Strategy::new_value(&crate::collection::vec(0u8..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = Strategy::new_value(&crate::collection::vec(any::<u16>(), 8), &mut rng);
            assert_eq!(exact.len(), 8);
        }
    }

    prop_compose! {
        /// A pair `(n, m)` with `m < n`.
        fn ordered_pair()(n in 1u32..100)(n in Just(n), m in 0u32..=u32::MAX) -> (u32, u32) {
            (n, m % n)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_pipeline_works(
            (n, m) in ordered_pair(),
            flag in any::<bool>(),
            bytes in crate::collection::vec(any::<u8>(), 1..4),
            pair in crate::array::uniform2(0u8..8),
        ) {
            prop_assume!(n >= 1);
            prop_assert!(m < n, "m={} n={}", m, n);
            prop_assert!(!bytes.is_empty() && bytes.len() < 4);
            prop_assert!(pair[0] < 8 && pair[1] < 8);
            prop_assert_eq!(flag as u8 + (!flag) as u8, 1);
        }

        #[test]
        fn oneof_and_recursive_generate(
            v in prop_oneof![Just(1u8), Just(2u8), 3u8..9].prop_recursive(
                2, 8, 2, |inner| (inner.clone(), inner).prop_map(|(a, b)| a.max(b)),
            ),
        ) {
            prop_assert!((1..9).contains(&v));
        }
    }
}
