//! Value-generation strategies: the `Strategy` trait and the
//! combinators the workspace's property suites use.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::rc::Rc;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just
/// a deterministic function of the RNG stream, which keeps the shim
/// tiny while preserving the generation API.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(value)` for every generated `value`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy. The result is cheaply cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy::from_fn(move |rng| s.new_value(rng))
    }

    /// Builds recursive values: `self` generates the leaves, and
    /// `recurse` wraps an inner strategy into branch nodes, nested at
    /// most `depth` levels. `desired_size` and `expected_branch_size`
    /// are accepted for API compatibility but unused — depth alone
    /// bounds the tree.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            let fallback = leaf.clone();
            current = BoxedStrategy::from_fn(move |rng| {
                // One case in four bottoms out early, so generated
                // trees have a mix of depths below the cap.
                if rng.next_u64() % 4 == 0 {
                    fallback.new_value(rng)
                } else {
                    branch.new_value(rng)
                }
            });
        }
        current
    }
}

/// A cloneable type-erased strategy.
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    /// Wraps a sampling function.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Self { sample: Rc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self { sample: Rc::clone(&self.sample) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy built from a plain sampling closure (used by
/// `prop_compose!`).
pub struct FnStrategy<F>(F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Wraps a sampling closure into a strategy.
pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

/// A uniform choice between type-erased alternatives (what
/// `prop_oneof!` builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Self { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self { options: self.options.clone() }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for the whole domain of `A`.
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u128() as $t
            }
        })+
    };
}
arbitrary_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! range_strategy {
    ($($t:ty),+) => {
        $(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u128() % span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start() as u128, *self.end() as u128);
                assert!(s <= e, "empty range strategy");
                // `e - s + 1` wraps to 0 only for the full 128-bit
                // domain, where the raw draw is already uniform.
                let span = (e - s).wrapping_add(1);
                let v = if span == 0 { rng.next_u128() } else { s + rng.next_u128() % span };
                v as $t
            }
        }
        )+
    };
}
range_strategy!(u8, u16, u32, u64, u128, usize);

macro_rules! tuple_strategy {
    ($(($s:ident, $idx:tt)),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!((A, 0));
tuple_strategy!((A, 0), (B, 1));
tuple_strategy!((A, 0), (B, 1), (C, 2));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6), (H, 7));
