//! An offline, vendored drop-in for the subset of the
//! [criterion](https://crates.io/crates/criterion) API this
//! workspace's benches use.
//!
//! The workspace must build with **no network access** (see
//! `DESIGN.md`), so the registry dependency was replaced by this shim.
//! It keeps the `criterion_group!`/`criterion_main!` entry points and
//! the `benchmark_group`/`bench_function`/`iter` call surface, but the
//! statistics are deliberately simple: each benchmark is warmed up,
//! then timed over as many iterations as fit a fixed budget, and the
//! mean per-iteration time is printed. There are no saved baselines,
//! confidence intervals, or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How measured work scales, for per-unit reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured closure processes this many bytes per iteration.
    Bytes(u64),
    /// The measured closure processes this many items per iteration.
    Elements(u64),
}

/// The top-level harness handle (one per bench binary).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n## {name}");
        BenchmarkGroup { _parent: self, name, sample_size: 20, throughput: None }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        let mean = b.mean();
        let rate = match (self.throughput, mean) {
            (Some(Throughput::Bytes(n)), m) if m > Duration::ZERO => {
                format!("  ({:.1} MiB/s)", n as f64 / m.as_secs_f64() / (1024.0 * 1024.0))
            }
            (Some(Throughput::Elements(n)), m) if m > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / m.as_secs_f64())
            }
            _ => String::new(),
        };
        eprintln!(
            "{}/{id}: {} per iter over {} samples{rate}",
            self.name,
            format_duration(mean),
            b.samples.len(),
        );
        self
    }

    /// Ends the group (a report boundary in real criterion).
    pub fn finish(self) {}
}

/// Times one closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`: one untimed warm-up call, then up to
    /// `sample_size` timed samples within a fixed wall-clock budget.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f());
        let budget = Duration::from_millis(500);
        let started = Instant::now();
        self.samples.clear();
        while self.samples.len() < self.sample_size
            && (self.samples.is_empty() || started.elapsed() < budget)
        {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.samples.iter().sum();
        total / u32::try_from(self.samples.len()).unwrap_or(u32::MAX)
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", d.as_secs_f64())
    }
}

/// Declares a function running a list of benchmark functions, each of
/// which takes `&mut Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; this shim has
            // no CLI and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-smoke");
        group.sample_size(5).throughput(Throughput::Elements(100));
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls >= 5, "warm-up plus samples ran the closure: {calls}");
    }

    #[test]
    fn durations_format_in_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
