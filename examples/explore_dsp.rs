//! Architecture exploration by iterative improvement — the paper's
//! Figure 1 loop, end to end.
//!
//! Starting from the full SPAM 4-way VLIW, the explorer evaluates the
//! DSP workload (dot product + FIR + vector update), derives
//! improvement mutations from the utilization statistics, and iterates
//! until no candidate improves the runtime/area/power objective.
//!
//! ```sh
//! cargo run --release --example explore_dsp
//! ```

use archex::explore::Explorer;
use archex::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let start = isdl::load(isdl::samples::SPAM)?;
    let kernels =
        vec![workloads::dot_product(6), workloads::fir(3, 10), workloads::vector_update(5)];
    println!(
        "exploring from `{}` ({} ops / {} fields) over {} kernels...\n",
        start.name,
        start.fields.iter().map(|f| f.ops.len()).sum::<usize>(),
        start.fields.len(),
        kernels.len(),
    );

    let explorer = Explorer { max_steps: 12, ..Explorer::default() };
    let trace = explorer.run(&start, &kernels)?;

    println!(
        "{:<28} {:>10} {:>9} {:>12} {:>9} {:>8}",
        "step", "cycles", "ns/cycle", "runtime us", "cells", "score"
    );
    for step in &trace.steps {
        println!(
            "{:<28} {:>10} {:>9.1} {:>12.2} {:>9} {:>8.3}",
            step.action,
            step.metrics.cycles,
            step.metrics.cycle_ns,
            step.metrics.runtime_us,
            step.metrics.area_cells as u64,
            step.score,
        );
    }
    let first = trace.steps.first().expect("initial step");
    let last = trace.steps.last().expect("final step");
    println!(
        "\n{} candidates ({} evaluated, {} cache hits, {} skipped); \
         area {:.1}% of the start, runtime {:.1}%",
        trace.candidates_evaluated(),
        trace.evaluated,
        trace.cache_hits,
        trace.skipped_errors,
        100.0 * last.metrics.area_cells / first.metrics.area_cells,
        100.0 * last.metrics.runtime_us / first.metrics.runtime_us,
    );
    if let Some(e) = &trace.first_error {
        println!("first skipped candidate: {e}");
    }
    println!(
        "final machine: {} ops / {} fields / {} constraints",
        trace.machine.fields.iter().map(|f| f.ops.len()).sum::<usize>(),
        trace.machine.fields.len(),
        trace.machine.constraints.len(),
    );
    Ok(())
}
