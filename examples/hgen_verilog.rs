//! Synthesize SPAM2 to Verilog and print the model plus its synthesis
//! report — the HGEN flow of §4, including the effect of resource
//! sharing and generated decode logic.
//!
//! ```sh
//! cargo run --example hgen_verilog > spam2.v
//! ```
//! (the report goes to stderr so the Verilog can be redirected)

use hgen::{synthesize, DecodeStyle, HgenOptions, ShareOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = isdl::load(isdl::samples::SPAM2)?;

    let shared = synthesize(&machine, HgenOptions::default())?;
    let unshared = synthesize(
        &machine,
        HgenOptions {
            share: ShareOptions { enabled: false, ..ShareOptions::default() },
            ..HgenOptions::default()
        },
    )?;
    let naive_decode = synthesize(
        &machine,
        HgenOptions { decode: DecodeStyle::NaiveComparator, ..HgenOptions::default() },
    )?;

    eprintln!("HGEN report for `{}`:", machine.name);
    eprintln!(
        "  datapath nodes {:>4}   units after sharing {:>4}   saved {:>3}",
        shared.stats.nodes, shared.stats.units, shared.stats.units_saved
    );
    eprintln!("  {:<24} {:>10} {:>10} {:>8}", "configuration", "cells", "cycle ns", "lines");
    for (name, r) in [
        ("sharing + 2-level decode", &shared),
        ("no sharing", &unshared),
        ("naive comparator decode", &naive_decode),
    ] {
        eprintln!(
            "  {:<24} {:>10} {:>10.1} {:>8}",
            name, r.report.area_cells as u64, r.report.cycle_ns, r.lines_of_verilog
        );
    }
    eprintln!("  synthesis time {:.3} s", shared.synthesis_time_s);

    // The generated model itself, on stdout.
    println!("{}", shared.verilog);
    Ok(())
}
