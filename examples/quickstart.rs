//! Quickstart: describe a machine in ISDL, generate its tools, and
//! run a program — the whole methodology in one page.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gensim::{StopReason, Xsim};
use hgen::{synthesize, HgenOptions};
use xasm::Assembler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The machine description (a small accumulator CPU).
    let machine = isdl::load(isdl::samples::ACC16)?;
    println!(
        "machine `{}`: {} operations in {} field(s)",
        machine.name,
        machine.fields.iter().map(|f| f.ops.len()).sum::<usize>(),
        machine.fields.len(),
    );

    // 2. The retargetable assembler comes for free.
    let program = Assembler::new(&machine).assemble(
        "
        start: ldi 10          ; acc = 10
               sta 1           ; counter = 10
        loop:  lda 0
               addm 1          ; sum += counter
               sta 0
               lda 1
               subm one
               sta 1
               jnz loop
               halt
        .data
        .org 60
        one:   .word 1
        ",
    )?;
    println!("assembled {} words", program.words.len());

    // 3. GENSIM: a cycle-accurate, bit-true simulator, generated.
    let mut sim = Xsim::generate(&machine)?;
    sim.load_program(&program);
    let stop = sim.run(100_000);
    assert_eq!(stop, StopReason::Halted);
    let dm = machine.storage_by_name("DM").expect("DM").0;
    println!(
        "simulated {} instructions in {} cycles; sum(1..=10) = {}",
        sim.stats().instructions,
        sim.stats().cycles,
        sim.state().read_u64(dm, 0),
    );

    // 4. HGEN: a synthesizable hardware model with physical costs.
    let hw = synthesize(&machine, HgenOptions::default())?;
    println!(
        "hardware model: {} lines of Verilog, cycle {:.1} ns, {} grid cells, {:.1} mW",
        hw.lines_of_verilog, hw.report.cycle_ns, hw.report.area_cells as u64, hw.report.power_mw,
    );
    println!(
        "=> workload runtime {:.2} us on the implemented machine",
        sim.stats().cycles as f64 * hw.report.cycle_ns / 1_000.0
    );
    Ok(())
}
