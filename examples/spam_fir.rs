//! Run an FIR filter on SPAM — the paper's 4-way VLIW — and print the
//! utilization statistics the exploration loop feeds on, plus an
//! execution trace excerpt and the interactive-debugger workflow.
//!
//! ```sh
//! cargo run --example spam_fir
//! ```

use archex::{compile, workloads};
use gensim::{cli, StopReason, Xsim};
use xasm::Assembler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = isdl::load(isdl::samples::SPAM)?;
    let kernel = workloads::fir(4, 12);
    println!("compiling `{}` for `{}`...", kernel.name, machine.name);
    let compiled = compile(&machine, &kernel)?;
    println!("{} target instructions; first lines:", compiled.instructions);
    for line in compiled.asm.lines().take(6) {
        println!("    {line}");
    }

    let program = Assembler::new(&machine).assemble(&compiled.asm)?;
    let mut sim = Xsim::generate(&machine)?;
    sim.load_program(&program);

    // The batch interface of §3.1: breakpoints, state monitors,
    // examine/set — scriptable, like the original XSIM batch files.
    let transcript = cli::run_batch(
        &mut sim,
        "monitor ACC\nbreak 3\nrun\nevents\nx ACC\nunbreak 3\nrun\nstats\n",
    );
    println!("--- batch transcript ---\n{transcript}------------------------");

    assert_eq!(sim.run(1_000_000), StopReason::Halted);
    let stats = sim.stats();
    println!(
        "{} instructions, {} cycles ({} stall cycles from the 3-cycle MAC)",
        stats.instructions, stats.cycles, stats.stall_cycles
    );
    for (fi, field) in machine.fields.iter().enumerate() {
        println!("  field {:5}: {:5.1}% utilized", field.name, 100.0 * stats.field_utilization(fi));
    }
    println!("(idle fields are what the exploration loop removes — see explore_dsp)");

    // Check one output against a reference computation.
    let dm = machine.storage_by_name("DM").expect("DM").0;
    let coeff: Vec<u64> = (0..4).map(|i| 1 + i).collect();
    let input: Vec<u64> = (0..12).map(|i| (i * 3 + 1) % 17).collect();
    let expect: u64 = (0..4).map(|t| coeff[t] * input[3 - t]).sum();
    let got = sim.state().read_u64(dm, 16);
    assert_eq!(got, expect);
    println!("first FIR output: {got} (reference {expect})");
    Ok(())
}
